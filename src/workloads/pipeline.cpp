#include "workloads/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "consistency/entry.hpp"
#include "core/optimistic_mutex.hpp"
#include "dsm/system.hpp"
#include "simkern/assert.hpp"
#include "simkern/coro.hpp"
#include "stats/metrics.hpp"

namespace optsync::workloads {

namespace {

struct Times {
  sim::Duration local;  ///< A and C (one "local task" each)
  sim::Duration mutex;  ///< M
};

Times compute_times(const PipelineParams& p, const net::CpuModel& cpu) {
  const sim::Duration local = cpu.flops_time(p.local_flops);
  const auto mutex = static_cast<sim::Duration>(
      static_cast<double>(local) * p.mutex_ratio);
  return Times{local, mutex};
}

// ------------------------------------------------------------------ GWC ---

struct GwcRun {
  const PipelineParams* params;
  Times times;
  dsm::DsmSystem* sys;
  core::OptimisticMutex* mux;
  dsm::VarId shared_a;
  std::vector<dsm::VarId> d;  ///< d[i]: hops published by processor i
  stats::EfficiencyMeter* meter;
  sim::Time finished_at = 0;
};

sim::Process gwc_pipe_node(GwcRun& run, net::NodeId i) {
  const auto& p = *run.params;
  auto& sys = *run.sys;
  auto& sched = sys.scheduler();
  auto& node = sys.node(i);
  const auto n = static_cast<std::uint32_t>(sys.node_count());

  for (std::uint32_t hop = i; hop < p.data_items; hop += n) {
    if (hop > 0) {
      // Wait for the wavefront from the predecessor. Eagersharing has
      // already placed the datum in local memory by the time the counter
      // update (written after it) arrives — GWC write order at work.
      const net::NodeId prev = (i + n - 1) % n;
      while (node.read(run.d[prev]) < static_cast<dsm::Word>(hop)) {
        co_await node.on_change(run.d[prev]).wait();
      }
    }

    co_await sim::delay(sched, run.times.local);  // local calculations
    run.meter->add_useful(i, run.times.local);

    core::Section sec;
    sec.shared_writes = {run.shared_a};
    sec.body = [&run, i](dsm::DsmNode& nd) -> sim::Process {
      // Read, compute, write back (the paper's Fig. 3 shape).
      const dsm::Word before = nd.read(run.shared_a);
      co_await sim::delay(run.sys->scheduler(), run.times.mutex);
      run.meter->add_useful(i, run.times.mutex);
      nd.write(run.shared_a, before + 1);
    };
    co_await run.mux->execute(i, sec).join();

    // Share the new datum with processor i+1 (single-writer variable; the
    // release that the mutex just issued precedes it in group order).
    node.write(run.d[i], static_cast<dsm::Word>(hop) + 1);

    co_await sim::delay(sched, run.times.local);  // continues local calc
    run.meter->add_useful(i, run.times.local);
    run.finished_at = std::max(run.finished_at, sched.now());
  }
}

PipelineResult run_gwc(const PipelineParams& p, const net::Topology& topo,
                       const dsm::DsmConfig& cfg, bool optimistic) {
  OPTSYNC_EXPECT(topo.size() >= 2);
  sim::Scheduler sched;
  dsm::DsmSystem sys(sched, topo, cfg);

  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < topo.size(); ++i) members.push_back(i);
  const dsm::GroupId g = sys.create_group(members, p.group_root);

  const dsm::VarId lock = sys.define_lock("pipe.lock", g);
  const dsm::VarId a = sys.define_mutex_data("pipe.a", g, lock, 0);
  std::vector<dsm::VarId> d;
  for (net::NodeId i = 0; i < topo.size(); ++i) {
    d.push_back(sys.define_data("pipe.d" + std::to_string(i), g, 0,
                                p.pipe_data_bytes));
  }

  stats::LockStats lstats;
  lstats.name = "pipe.lock";
  core::OptimisticMutex::Config mcfg;
  mcfg.enable_optimistic = optimistic;
  mcfg.lock_stats = &lstats;
  core::OptimisticMutex mux(sys, lock, mcfg);
  stats::EfficiencyMeter meter(topo.size());

  GwcRun run;
  run.params = &p;
  run.times = compute_times(p, cfg.cpu);
  run.sys = &sys;
  run.mux = &mux;
  run.shared_a = a;
  run.d = d;
  run.meter = &meter;

  std::vector<sim::Process> procs;
  for (net::NodeId i = 0; i < topo.size(); ++i) {
    procs.push_back(gwc_pipe_node(run, i));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  PipelineResult res;
  res.elapsed = run.finished_at;
  res.network_power = meter.network_power(res.elapsed);
  res.avg_efficiency = meter.average_efficiency(res.elapsed);
  res.messages = sys.network().stats().messages;
  res.bytes = sys.network().stats().bytes;
  res.optimistic_attempts = mux.stats().optimistic_attempts;
  res.optimistic_successes = mux.stats().optimistic_successes;
  res.rollbacks = mux.stats().rollbacks;
  res.shared_accumulator = sys.node(p.group_root).read(a);
  lstats.root_speculative_drops = sys.root_of(g).stats().speculative_drops;
  res.lock_stats = std::move(lstats);
  return res;
}

// ---------------------------------------------------------------- entry ---

struct EntryRun {
  const PipelineParams* params;
  Times times;
  sim::Scheduler* sched;
  consistency::EntryEngine* ec;
  consistency::EntryEngine::LockId mutex_lock;
  std::vector<consistency::EntryEngine::LockId> d_lock;  ///< guards d[i]
  std::vector<dsm::Word> d_count;
  std::vector<std::unique_ptr<sim::Signal>> d_sig;
  stats::EfficiencyMeter* meter;
  std::int64_t shared_accumulator = 0;
  sim::Time finished_at = 0;
};

sim::Process entry_pipe_node(EntryRun& run, net::NodeId i, std::size_t n) {
  const auto& p = *run.params;
  auto& sched = *run.sched;
  auto& ec = *run.ec;

  for (std::uint32_t hop = i; hop < p.data_items; hop += n) {
    if (hop > 0) {
      const net::NodeId prev = static_cast<net::NodeId>((i + n - 1) % n);
      while (run.d_count[prev] < static_cast<dsm::Word>(hop)) {
        co_await run.d_sig[prev]->wait();
      }
      // "Demand fetch is needed when non-mutually exclusive data is read."
      co_await ec.read_nonexclusive(i, run.d_lock[prev], p.pipe_data_bytes)
          .join();
    }

    co_await sim::delay(sched, run.times.local);
    run.meter->add_useful(i, run.times.local);

    // Exclusive entry: the grant ships the guarded data from the previous
    // holder (the predecessor processor).
    co_await ec.acquire(i, run.mutex_lock).join();
    co_await sim::delay(sched, run.times.mutex);
    run.meter->add_useful(i, run.times.mutex);
    ++run.shared_accumulator;
    ec.release(i, run.mutex_lock);

    // Publish: exclusive entry of the datum's own guard invalidates the
    // successor's non-exclusive copy from the previous round.
    co_await ec.acquire(i, run.d_lock[i]).join();
    ec.release(i, run.d_lock[i]);
    run.d_count[i] = static_cast<dsm::Word>(hop) + 1;
    run.d_sig[i]->notify_all();

    co_await sim::delay(sched, run.times.local);
    run.meter->add_useful(i, run.times.local);
    run.finished_at = std::max(run.finished_at, sched.now());
  }
}

PipelineResult run_entry(const PipelineParams& p, const net::Topology& topo) {
  OPTSYNC_EXPECT(topo.size() >= 2);
  sim::Scheduler sched;
  net::Network net(sched, topo, net::LinkModel::paper());

  consistency::EntryEngine::Config cfg;
  cfg.cache_reads = false;  // every test refetches (pure demand fetch)
  // Lock location goes through a fixed manager (directory scheme): the
  // extra leg grows with the mesh, which is what bends the paper's entry
  // line down from 0.81 at 2 CPUs to 0.64 at 128.
  cfg.route_via_manager = true;
  cfg.manager = p.group_root;
  consistency::EntryEngine ec(net, cfg);

  const std::size_t n = topo.size();
  EntryRun run;
  run.params = &p;
  run.times = compute_times(p, net::CpuModel::paper());
  run.sched = &sched;
  run.ec = &ec;
  // The global mutex starts owned by the last processor so the very first
  // acquire pays the same transfer every later hop pays.
  run.mutex_lock = ec.create_lock(static_cast<net::NodeId>(n - 1),
                                  p.mutex_data_bytes);
  for (net::NodeId i = 0; i < n; ++i) {
    run.d_lock.push_back(ec.create_lock(i, p.pipe_data_bytes));
    run.d_count.push_back(0);
    run.d_sig.push_back(std::make_unique<sim::Signal>(sched));
  }
  stats::EfficiencyMeter meter(n);
  run.meter = &meter;

  std::vector<sim::Process> procs;
  for (net::NodeId i = 0; i < n; ++i) {
    procs.push_back(entry_pipe_node(run, i, n));
  }
  sched.run();
  for (const auto& pr : procs) pr.rethrow_if_failed();
  for (const auto& pr : procs) OPTSYNC_ENSURE(pr.done());

  PipelineResult res;
  res.elapsed = run.finished_at;
  res.network_power = meter.network_power(res.elapsed);
  res.avg_efficiency = meter.average_efficiency(res.elapsed);
  res.messages = net.stats().messages;
  res.bytes = net.stats().bytes;
  res.shared_accumulator = run.shared_accumulator;
  return res;
}

}  // namespace

PipelineResult run_pipeline(PipelineMethod method, const PipelineParams& p,
                            const net::Topology& topo) {
  switch (method) {
    case PipelineMethod::kNoDelay: {
      dsm::DsmConfig cfg = p.dsm;
      cfg.link = net::LinkModel::zero();
      cfg.root_process_ns = 0;
      return run_gwc(p, topo, cfg, /*optimistic=*/false);
    }
    case PipelineMethod::kOptimistic:
      return run_gwc(p, topo, p.dsm, /*optimistic=*/true);
    case PipelineMethod::kRegular:
      return run_gwc(p, topo, p.dsm, /*optimistic=*/false);
    case PipelineMethod::kEntry:
      return run_entry(p, topo);
  }
  OPTSYNC_ENSURE(false && "unreachable: unknown PipelineMethod");
  return {};
}

}  // namespace optsync::workloads
