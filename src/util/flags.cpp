#include "util/flags.hpp"

#include <algorithm>
#include <stdexcept>

namespace optsync::util {

Flags::Flags(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

Flags::Flags(const std::vector<std::string>& args) { parse(args); }

void Flags::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("bare '--' is not a valid flag");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // boolean `--name`.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

void Flags::allow_only(const std::vector<std::string>& allowed) const {
  for (const auto& [name, _] : values_) {
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

}  // namespace optsync::util
