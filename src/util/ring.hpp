// Flat circular buffer with deque surface, no per-node allocation.
//
// std::deque allocates a ~512-byte map chunk per block and never returns
// it while elements churn through; the root waiter queues and the node
// inboxes push/pop one element per message, so the deque's block walk and
// its allocator sat on the hot path. Ring keeps elements in one contiguous
// power-of-two array indexed by masked head/tail counters: push_back and
// pop_front are a store/load plus an increment, and the array is reused
// forever once the queue has hit its high-water mark.
//
// API mirrors the deque subset the substrate uses (empty/size/front/back/
// push_back/emplace_back/pop_front/operator[]/clear) so GroupRoot's public
// LockState::queue keeps its shape for tests and the service layer.
// Requires T to be default-constructible and move-assignable.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "simkern/assert.hpp"

namespace optsync::util {

template <typename T>
class Ring {
 public:
  Ring() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  [[nodiscard]] T& front() {
    OPTSYNC_EXPECT(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    OPTSYNC_EXPECT(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() {
    OPTSYNC_EXPECT(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask_];
  }
  [[nodiscard]] const T& back() const {
    OPTSYNC_EXPECT(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask_];
  }

  /// i-th element from the front (0 = front), for tests and introspection.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    OPTSYNC_EXPECT(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  template <typename... A>
  void emplace_back(A&&... args) {
    push_back(T(std::forward<A>(args)...));
  }

  void pop_front() {
    OPTSYNC_EXPECT(size_ > 0);
    buf_[head_] = T{};  // release resources held by the slot
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  /// Removes and returns the front element.
  T take_front() {
    OPTSYNC_EXPECT(size_ > 0);
    T out = std::move(buf_[head_]);
    buf_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --size_;
    return out;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) buf_[(head_ + i) & mask_] = T{};
    head_ = 0;
    size_ = 0;
  }

  void reserve(std::size_t n) {
    while (buf_.size() < n) grow();
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_.swap(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace optsync::util
