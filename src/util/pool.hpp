// Recycling object pool: steady-state allocation-free object reuse.
//
// The multicast path used to construct a shared_ptr<const Frame> per flushed
// frame — a control block plus a writes vector that grew from empty on
// every frame. RecyclePool hands out pointers to long-lived objects carved
// from deque slabs: release() does NOT destroy the object, so internal
// buffers (Frame::writes capacity) survive to the next acquire and the
// per-frame cost collapses to a freelist pop. Addresses are stable for the
// object's whole life (std::deque never relocates), which is what lets
// closures capture raw payload pointers across scheduler hops.
//
// Single-threaded by design, like the sim kernel it serves; rt/ has its own
// concurrency story.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace optsync::util {

template <typename T>
class RecyclePool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the freelist
    std::size_t created = 0;     ///< objects ever constructed (high-water)
    std::size_t free = 0;        ///< objects currently in the freelist
  };

  RecyclePool() = default;
  RecyclePool(const RecyclePool&) = delete;
  RecyclePool& operator=(const RecyclePool&) = delete;

  /// Returns a pooled object. Fresh objects are value-initialized; recycled
  /// ones come back exactly as release() received them — callers reset the
  /// fields they use (and keep the capacity that makes recycling pay).
  T* acquire() {
    ++stats_.acquires;
    if (!free_.empty()) {
      ++stats_.reuses;
      T* p = free_.back();
      free_.pop_back();
      --stats_.free;
      return p;
    }
    storage_.emplace_back();
    ++stats_.created;
    return &storage_.back();
  }

  /// Returns an object to the freelist. The object must have come from this
  /// pool and must not be used after release.
  void release(T* p) {
    free_.push_back(p);
    ++stats_.free;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::deque<T> storage_;  // stable addresses; grows in slabs, never shrinks
  std::vector<T*> free_;
  Stats stats_;
};

}  // namespace optsync::util
