// Cache-line padding for per-thread / per-node state (2PLSF pad_word idiom).
//
// The threaded runtime under rt/ keeps arrays indexed by thread id; without
// padding, neighbouring entries share a cache line and every update is a
// coherence miss for every other thread (false sharing). CachePadded<T>
// rounds each element up to its own line. The simulated kernel is
// single-threaded and does not need this — it is for rt/ state and for any
// per-shard counters a future threaded service port shares.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace optsync::util {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
struct alignas(kCacheLine) CachePadded {
  CachePadded() = default;
  template <typename... A>
  explicit CachePadded(A&&... args) : value(std::forward<A>(args)...) {}

  T value;

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace optsync::util
