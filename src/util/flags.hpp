// Minimal command-line flag parsing for the CLI tools and benches.
//
// Supports `--name value`, `--name=value`, boolean `--name`, and positional
// arguments. Unknown flags are errors (fail fast beats silent typos).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace optsync::util {

class Flags {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  /// Also usable directly from a vector (tests).
  explicit Flags(const std::vector<std::string>& args);

  /// Positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const;

  /// String value; `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;

  /// Integer value; throws std::invalid_argument on non-numeric.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Floating-point value.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Boolean: `--x` or `--x=true/1/yes` is true; `--x=false/0/no` is false.
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  /// Names seen on the command line (for validation / help text).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Throws std::invalid_argument when a present flag is not in `allowed`.
  void allow_only(const std::vector<std::string>& allowed) const;

 private:
  void parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace optsync::util
