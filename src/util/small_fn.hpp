// Small-buffer-optimized callable: the kernel's replacement for
// std::function on the per-message hot paths.
//
// Every simulated message schedules at least one event, and every event used
// to carry a std::function whose capture list (frame payload pointer, trace
// context, node ids) overflows libstdc++'s 16-byte inline buffer — one heap
// allocation per message, twice that under the reliable channel. SmallFn
// widens the inline buffer so every closure the substrate creates is stored
// in place; a static counter exposes how often the heap fallback fires so
// bench/kernel_overhead can assert the steady-state path allocates nothing.
//
// Copyable on purpose: net::Network duplicates a delivery callback when the
// fault injector clones a message, and the reliable channel re-captures
// callbacks across retransmissions. Closures that reach SmallFn must
// therefore be copy-constructible — all scheduler/transport lambdas in this
// codebase are (they capture pointers, ids, and refcounted payload handles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace optsync::util {

/// How many times any SmallFn fell back to a heap-allocated target since
/// process start. A plain counter (single-threaded kernel); benches read it
/// around a run to prove the hot path stays allocation-free.
inline std::uint64_t& small_fn_heap_allocs() {
  static std::uint64_t n = 0;
  return n;
}

template <typename Signature, std::size_t InlineBytes = 88>
class SmallFn;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (kInline<Fn>) {
      ::new (storage()) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<void**>(storage()) = new Fn(std::forward<F>(f));
      ++small_fn_heap_allocs();
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage(), other.storage());
      other.ops_ = nullptr;
    }
  }

  SmallFn(const SmallFn& other) : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->copy(storage(), other.storage());
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage(), other.storage());
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn& operator=(const SmallFn& other) {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->copy(storage(), other.storage());
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~SmallFn() { reset(); }

  R operator()(Args... args) const {
    return ops_->call(storage(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

  /// True when the current target lives in the inline buffer (empty counts
  /// as inline). Exposed for the kernel_overhead bench and unit tests.
  [[nodiscard]] bool is_inline() const {
    return ops_ == nullptr || ops_->inline_stored;
  }

  static constexpr std::size_t inline_bytes() { return InlineBytes; }

 private:
  template <typename Fn>
  static constexpr bool kInline = sizeof(Fn) <= InlineBytes &&
                                  alignof(Fn) <= alignof(std::max_align_t) &&
                                  std::is_nothrow_move_constructible_v<Fn>;

  struct Ops {
    R (*call)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move into dst, destroy src
    void (*copy)(void* dst, const void* src);
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      +[](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
      },
      +[](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      +[](void* dst, const void* src) {
        ::new (dst) Fn(*static_cast<const Fn*>(src));
      },
      +[](void* s) { static_cast<Fn*>(s)->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      +[](void* s, Args&&... args) -> R {
        return (**static_cast<Fn**>(s))(std::forward<Args>(args)...);
      },
      +[](void* dst, void* src) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      +[](void* dst, const void* src) {
        *static_cast<Fn**>(dst) = new Fn(**static_cast<Fn* const*>(src));
        ++small_fn_heap_allocs();
      },
      +[](void* s) { delete *static_cast<Fn**>(s); },
      false,
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  void* storage() const { return const_cast<unsigned char*>(buf_); }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
};

}  // namespace optsync::util
