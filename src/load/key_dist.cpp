#include "load/key_dist.hpp"

#include <algorithm>
#include <cmath>

#include "simkern/assert.hpp"

namespace optsync::load {

KeySampler::KeySampler(KeyConfig cfg) : cfg_(cfg) {
  OPTSYNC_EXPECT(cfg_.keys >= 1);
  if (cfg_.dist != KeyDist::kZipfian) return;
  OPTSYNC_EXPECT(cfg_.zipf_s >= 0.0);
  cdf_.reserve(cfg_.keys);
  double total = 0.0;
  for (std::uint64_t r = 0; r < cfg_.keys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), cfg_.zipf_s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding at the tail
}

std::uint64_t KeySampler::sample(sim::Rng& rng) const {
  if (cfg_.dist == KeyDist::kUniform) return 1 + rng.below(cfg_.keys);
  const double u = rng.uniform01();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::uint64_t>(it - cdf_.begin());
  return (rank >= cfg_.keys ? cfg_.keys - 1 : rank) + 1;
}

}  // namespace optsync::load
