#include "load/generator.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::load {

namespace {
// Distinct stream constants: one Rng per decision so changing, say, the
// read fraction cannot perturb the arrival times of an otherwise-equal
// schedule (the streams are independent functions of the seed).
constexpr std::uint64_t kArrivalStream = 0x5ca1ab1e00000001ull;
constexpr std::uint64_t kKeyStream = 0x5ca1ab1e00000002ull;
constexpr std::uint64_t kOpStream = 0x5ca1ab1e00000003ull;
constexpr std::uint64_t kNodeStream = 0x5ca1ab1e00000004ull;
constexpr std::uint64_t kValueStream = 0x5ca1ab1e00000005ull;
}  // namespace

Generator::Generator(GeneratorConfig cfg) : cfg_(cfg) {
  OPTSYNC_EXPECT(cfg_.requests >= 1);
  OPTSYNC_EXPECT(cfg_.read_fraction >= 0.0 && cfg_.read_fraction <= 1.0);
  OPTSYNC_EXPECT(cfg_.txn_fraction >= 0.0 && cfg_.rmw_fraction >= 0.0 &&
                 cfg_.read_fraction + cfg_.txn_fraction + cfg_.rmw_fraction <=
                     1.0);
  OPTSYNC_EXPECT(cfg_.txn_keys >= 1);
}

ArrivalConfig Generator::effective_arrival(const GeneratorConfig& cfg) {
  ArrivalConfig a = cfg.arrival;
  if (cfg.rate_rps > 0.0) a.mean_gap_ns = 1e9 / cfg.rate_rps;
  return a;
}

std::vector<Request> Generator::plan(const GeneratorConfig& cfg,
                                     std::uint32_t node_count) {
  OPTSYNC_EXPECT(node_count >= 1);
  sim::Rng arrival_rng(cfg.seed ^ kArrivalStream);
  sim::Rng key_rng(cfg.seed ^ kKeyStream);
  sim::Rng op_rng(cfg.seed ^ kOpStream);
  sim::Rng node_rng(cfg.seed ^ kNodeStream);
  sim::Rng value_rng(cfg.seed ^ kValueStream);

  ArrivalProcess arrivals(effective_arrival(cfg));
  const KeySampler keys(cfg.keys);
  const std::uint32_t span =
      cfg.node_span == 0 ? node_count : std::min(cfg.node_span, node_count);

  std::vector<Request> out;
  out.reserve(cfg.requests);
  sim::Time clock = 0;
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    // Hotspot shift: rotate post-shift draws within the key domain. The
    // rotation happens here, not in KeySampler, because it is a property
    // of the SCHEDULE (request index), not of the distribution.
    const auto draw = [&cfg, &keys, &key_rng, i] {
      shard::Key k = keys.sample(key_rng);
      if (cfg.keys.shift_offset != 0 && i >= cfg.keys.shift_at_request) {
        k = 1 + (k - 1 + cfg.keys.shift_offset) % cfg.keys.keys;
      }
      return k;
    };
    clock += arrivals.next_gap(arrival_rng);
    Request r;
    r.at = clock;
    r.node = static_cast<dsm::NodeId>(node_rng.below(span));
    const double u = op_rng.uniform01();
    if (u < cfg.read_fraction) {
      r.op = stats::ServiceOp::kRead;
    } else if (u < cfg.read_fraction + cfg.txn_fraction) {
      r.op = stats::ServiceOp::kTxn;
    } else if (u < cfg.read_fraction + cfg.txn_fraction + cfg.rmw_fraction) {
      // Carved out of the interval after txn so a zero rmw_fraction
      // leaves every pre-existing plan byte-identical.
      r.op = stats::ServiceOp::kRmw;
    } else {
      r.op = stats::ServiceOp::kWrite;
    }
    const std::uint32_t want = r.op == stats::ServiceOp::kTxn ||
                                       r.op == stats::ServiceOp::kRmw
                                   ? cfg.txn_keys
                                   : 1;
    r.keys.reserve(want);
    while (r.keys.size() < want) {
      const shard::Key k = draw();
      // Duplicate keys inside one transaction collapse to the last write
      // anyway; resample a few times for distinct keys, then give up (a
      // tiny key space may not have `want` distinct keys to offer).
      if (std::find(r.keys.begin(), r.keys.end(), k) != r.keys.end()) {
        bool inserted = false;
        for (int attempt = 0; attempt < 8 && !inserted; ++attempt) {
          const shard::Key k2 = draw();
          if (std::find(r.keys.begin(), r.keys.end(), k2) == r.keys.end()) {
            r.keys.push_back(k2);
            inserted = true;
          }
        }
        if (!inserted) break;
      } else {
        r.keys.push_back(k);
      }
    }
    r.value = static_cast<dsm::Word>(value_rng.next() >> 1);
    out.push_back(std::move(r));
  }
  return out;
}

shard::ShardId Generator::primary_shard(const shard::ShardedStore& store,
                                        const Request& r) {
  shard::ShardId best = store.shard_of(r.keys.front());
  for (const shard::Key k : r.keys) {
    best = std::min(best, store.shard_of(k));
  }
  return best;
}

sim::Process Generator::worker(shard::Client& client,
                               stats::ServiceReport& report, dsm::NodeId n) {
  shard::ShardedStore& store = client.store();
  auto& sched = store.system().scheduler();
  NodeQueue& q = *queues_[n];
  while (true) {
    while (q.fifo.empty() && !all_pushed_) co_await q.ready.wait();
    if (q.fifo.empty()) break;  // every arrival delivered and drained
    const Request& r = plan_[q.fifo.front()];
    q.fifo.pop_front();
    ++started_;
    // Open the causal trace for this request. The client-queue leg (arrival
    // to now) is recorded as a backlog span by begin_op itself.
    auto* trc = store.system().tracer();
    const shard::ShardId primary = primary_shard(store, r);
    telemetry::SpanContext octx{};
    if (trc != nullptr) {
      octx = trc->begin_op(n, stats::service_op_name(r.op), primary,
                           base_ + r.at, sched.now());
    }
    switch (r.op) {
      case stats::ServiceOp::kRead: {
        const sim::Time compute_began = sched.now();
        co_await sim::delay(sched, cfg_.read_compute_ns);
        std::optional<dsm::Word> out;
        co_await client.read(n, r.keys.front(), &out, {cfg_.read_level})
            .join();
        if (trc != nullptr && octx.valid()) {
          trc->record_span(octx.trace, octx.span, telemetry::SpanKind::kCs, n,
                           compute_began, sched.now());
        }
        break;
      }
      case stats::ServiceOp::kWrite:
        co_await client.write(n, r.keys.front(), r.value).join();
        break;
      case stats::ServiceOp::kTxn: {
        shard::TxnRequest req;
        req.puts.reserve(r.keys.size());
        for (std::size_t i = 0; i < r.keys.size(); ++i) {
          req.puts.emplace_back(r.keys[i],
                                r.value + static_cast<dsm::Word>(i));
        }
        co_await client.txn(n, std::move(req)).join();
        break;
      }
      case stats::ServiceOp::kRmw: {
        // YCSB-F: read every key, add the planned delta, write back — one
        // atomic multi-key increment.
        shard::TxnRequest req;
        req.adds = r.keys;
        req.delta = static_cast<dsm::Word>(r.value % 1024) + 1;
        co_await client.txn(n, std::move(req)).join();
        break;
      }
    }
    if (trc != nullptr && octx.valid()) trc->end_op(n, sched.now());
    auto& slot = report.shards[primary].op(r.op);
    ++slot.completed;
    // Arrival-to-completion: client queueing behind earlier requests on
    // this node is part of the figure (open-loop SLO accounting).
    slot.latency_ns.record(
        static_cast<std::int64_t>(sched.now() - (base_ + r.at)));
    ++finished_;
  }
}

void Generator::register_telemetry(telemetry::Sampler& sampler) {
  sampler.set_help("optsync_gen_queued",
                   "Open-loop arrivals pushed but not yet started");
  sampler.set_help("optsync_gen_inflight",
                   "Requests started but not yet completed");
  sampler.add_gauge("optsync_gen_queued", {}, [this] {
    return static_cast<double>(pushed_ - started_);
  });
  sampler.add_gauge("optsync_gen_inflight", {}, [this] {
    return static_cast<double>(started_ - finished_);
  });
}

sim::Process Generator::run(shard::ShardedStore& store,
                            stats::ServiceReport& report) {
  // Pre-Client shim: the local Client lives in this coroutine frame for
  // the whole run.
  shard::Client client(store);
  co_await run(client, report).join();
}

sim::Process Generator::run(shard::Client& client,
                            stats::ServiceReport& report) {
  shard::ShardedStore& store = client.store();
  auto& sys = store.system();
  auto& sched = sys.scheduler();
  const auto node_count = static_cast<std::uint32_t>(sys.node_count());

  plan_ = plan(cfg_, node_count);
  base_ = sched.now();
  pushed_ = 0;
  started_ = 0;
  finished_ = 0;
  all_pushed_ = false;
  done_ = false;

  if (report.shards.size() < store.shards()) {
    report.shards.resize(store.shards());
  }
  const double gap_ns = effective_arrival(cfg_).mean_gap_ns;
  report.offered_rps = gap_ns > 0.0 ? 1e9 / gap_ns : 0.0;

  queues_.clear();
  for (std::uint32_t n = 0; n < node_count; ++n) {
    queues_.push_back(std::make_unique<NodeQueue>(sched));
  }

  // Deliver each arrival at its planned instant: count it as issued, file
  // it in the issuing node's FIFO, wake that node's worker. After the last
  // arrival, wake everyone so idle workers can observe all_pushed_ and
  // exit.
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const Request& r = plan_[i];
    sched.at(base_ + r.at, [this, &store, &report, i] {
      const Request& req = plan_[i];
      ++report.shards[primary_shard(store, req)].op(req.op).issued;
      NodeQueue& q = *queues_[req.node];
      q.fifo.push_back(i);
      q.ready.notify_all();
      if (++pushed_ == plan_.size()) {
        all_pushed_ = true;
        for (auto& nq : queues_) nq->ready.notify_all();
      }
    });
  }

  std::vector<sim::Process> workers;
  workers.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    workers.push_back(worker(client, report, n));
  }
  for (auto& w : workers) co_await w.join();

  OPTSYNC_EXPECT(finished_ == plan_.size());
  report.elapsed_ns = sched.now() - base_;
  done_ = true;
}

}  // namespace optsync::load
