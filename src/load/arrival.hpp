// Open-loop arrival processes for the synthetic traffic engine.
//
// An open-loop generator schedules request arrivals from a clock, not from
// completions — a saturated service keeps receiving work and its queues
// (and tail latencies) grow, exactly what an SLO measurement must observe
// (no coordinated omission). The arrival process produces the inter-arrival
// gaps; all randomness flows through the caller's sim::Rng so a seed fully
// determines the schedule (determinism invariant 7).
//
//   * kPoisson — exponential gaps with the configured mean: memoryless
//     arrivals, the standard open-system model.
//   * kUniform — gaps uniform in [mean/2, 3*mean/2]: same mean, bounded
//     burstiness; isolates queueing effects from arrival variance.
//   * kBurst   — trains of `burst_size` requests with gaps compressed by
//     `burst_compression`, separated by idle gaps sized so the long-run
//     mean rate is preserved. Stresses frame coalescing and lock queues
//     the way real traffic spikes do.
#pragma once

#include <cstdint>
#include <string_view>

#include "simkern/random.hpp"
#include "simkern/time.hpp"

namespace optsync::load {

enum class ArrivalKind { kPoisson, kUniform, kBurst };

constexpr std::string_view arrival_kind_name(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kUniform:
      return "uniform";
    case ArrivalKind::kBurst:
      return "burst";
  }
  return "?";
}

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean inter-arrival gap; the offered rate is 1e9 / mean_gap_ns req/s.
  double mean_gap_ns = 10'000.0;
  /// kBurst: requests per train (>= 1).
  std::uint32_t burst_size = 16;
  /// kBurst: in-train gaps are mean_gap_ns / burst_compression (> 1).
  double burst_compression = 8.0;
};

/// Stateful gap source. Construct once per schedule; feed one Rng.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalConfig cfg);

  /// The gap between the previous arrival and the next one.
  [[nodiscard]] sim::Duration next_gap(sim::Rng& rng);

 private:
  ArrivalConfig cfg_;
  std::uint64_t position_ = 0;  ///< arrivals emitted (burst phase index)
};

}  // namespace optsync::load
