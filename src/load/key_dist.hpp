// Key popularity distributions for the traffic engine.
//
// kUniform picks each key with equal probability; kZipfian follows the
// classic power law (weight of the r-th most popular key proportional to
// 1/r^s), the standard model for skewed KV traffic. Skew is what makes
// sharding interesting: under Zipf a handful of keys — and therefore a
// handful of shards — absorb most writes, so hot shards flip the adaptive
// gate to the queue lock while cold shards keep speculating.
//
// The Zipf CDF is precomputed at construction; sampling is one uniform01()
// draw plus a binary search, fully deterministic per sim::Rng stream.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "simkern/random.hpp"

namespace optsync::load {

enum class KeyDist { kUniform, kZipfian };

constexpr std::string_view key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform:
      return "uniform";
    case KeyDist::kZipfian:
      return "zipfian";
  }
  return "?";
}

struct KeyConfig {
  KeyDist dist = KeyDist::kZipfian;
  std::uint64_t keys = 256;  ///< key domain is [1, keys] (0 is reserved)
  double zipf_s = 0.99;      ///< Zipf exponent (YCSB default)

  /// Mid-run hotspot shift: from planned request index `shift_at_request`
  /// onward, every sampled key is rotated within the domain,
  /// key' = 1 + (key - 1 + shift_offset) mod keys. Rotation is a
  /// bijection, so the popularity SHAPE is unchanged — only WHICH keys
  /// (and hence which shards) are hot moves. shift_offset == 0 disables
  /// the shift and keeps pre-existing plans byte-identical.
  std::uint64_t shift_at_request = 0;
  std::uint64_t shift_offset = 0;
};

class KeySampler {
 public:
  explicit KeySampler(KeyConfig cfg);

  /// Draws one key in [1, keys]. Under kZipfian, key 1 is the most
  /// popular, key 2 the second, and so on (rank order = key order, which
  /// makes frequency assertions in tests straightforward).
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;

  [[nodiscard]] const KeyConfig& config() const { return cfg_; }

 private:
  KeyConfig cfg_;
  std::vector<double> cdf_;  ///< empty for kUniform
};

}  // namespace optsync::load
