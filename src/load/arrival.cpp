#include "load/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "simkern/assert.hpp"

namespace optsync::load {

namespace {
sim::Duration to_gap(double ns) {
  // Gaps are at least 1 ns so simulated time always advances between
  // arrivals and the schedule stays strictly ordered per node.
  return ns < 1.0 ? 1 : static_cast<sim::Duration>(std::llround(ns));
}
}  // namespace

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg) : cfg_(cfg) {
  OPTSYNC_EXPECT(cfg_.mean_gap_ns > 0.0);
  if (cfg_.kind == ArrivalKind::kBurst) {
    OPTSYNC_EXPECT(cfg_.burst_size >= 1);
    OPTSYNC_EXPECT(cfg_.burst_compression >= 1.0);
  }
}

sim::Duration ArrivalProcess::next_gap(sim::Rng& rng) {
  const double mean = cfg_.mean_gap_ns;
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      return to_gap(rng.exponential(mean));
    case ArrivalKind::kUniform:
      return to_gap(mean * (0.5 + rng.uniform01()));
    case ArrivalKind::kBurst: {
      // A train of B arrivals spans (B-1) compressed gaps; the idle gap
      // before the next train restores the long-run mean of B*mean per
      // train. Compression 1 degenerates to a fixed-rate stream.
      const std::uint64_t phase = position_++ % cfg_.burst_size;
      const double in_train = mean / cfg_.burst_compression;
      if (phase != 0 || position_ == 1) return to_gap(in_train);
      const double idle =
          static_cast<double>(cfg_.burst_size) * mean -
          static_cast<double>(cfg_.burst_size - 1) * in_train;
      return to_gap(idle);
    }
  }
  return 1;
}

}  // namespace optsync::load
