// Open-loop traffic engine for the sharded DSM service.
//
// The generator runs in two stages:
//
//   1. plan() — a pure function of (config, node count) that expands the
//      seed into a complete request schedule: arrival times from an
//      ArrivalProcess, keys from a KeySampler, operation class and issuing
//      node from dedicated Rng streams. Same seed, same plan, byte for
//      byte (determinism invariant 7) — the schedule exists before the
//      service runs, which is what "open loop" means: a slow service does
//      not slow the arrivals down.
//
//   2. run() — a sim::Process that replays the plan through a
//      shard::Client. Arrivals enqueue into per-node FIFOs; one
//      worker coroutine per node drains its FIFO in order (a node is one
//      instruction stream — the Fig. 4 nesting rule forbids overlapping
//      sections on a node). Request latency is measured from ARRIVAL to
//      completion, so time spent queued behind earlier requests on the
//      same node counts — the coordinated-omission-free figure an SLO is
//      stated over. Latencies land in stats::ServiceReport, tagged by
//      shard and operation class.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "load/arrival.hpp"
#include "load/key_dist.hpp"
#include "shard/client.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/coro.hpp"
#include "stats/service_report.hpp"
#include "telemetry/sampler.hpp"

namespace optsync::load {

/// One planned request. `keys.size() > 1` only for kTxn/kRmw.
struct Request {
  sim::Time at = 0;  ///< arrival offset from the start of run()
  dsm::NodeId node = 0;
  stats::ServiceOp op = stats::ServiceOp::kRead;
  std::vector<shard::Key> keys;
  dsm::Word value = 0;
};

struct GeneratorConfig {
  std::uint64_t seed = 1;
  std::uint64_t requests = 1000;

  /// Offered load in requests per second of simulated time. When > 0 it
  /// overrides arrival.mean_gap_ns (gap = 1e9 / rate); set to 0 to drive
  /// the gap directly through `arrival`.
  double rate_rps = 0.0;
  ArrivalConfig arrival;
  KeyConfig keys;

  /// Issue requests only from nodes [0, node_span). 0 means every node.
  /// Elastic full-replication runs set node_count - 1 so the reserved
  /// control node (where directory moves execute) carries no client
  /// traffic; the 0 default keeps pre-existing plans byte-identical.
  std::uint32_t node_span = 0;

  double read_fraction = 0.50;  ///< P(read); rest split write/txn/rmw
  double txn_fraction = 0.05;   ///< P(multi-key transaction)
  /// P(multi-key read-modify-write) — the YCSB-F op class. Defaults to 0
  /// so pre-existing plans stay byte-identical: the rmw draw reuses the
  /// op stream's single uniform per request, splitting the interval after
  /// txn, and `value` doubles as the rmw delta.
  double rmw_fraction = 0.0;
  std::uint32_t txn_keys = 3;   ///< keys per transaction/rmw (deduplicated)

  /// Local compute per read (lookup cost); reads are otherwise free.
  sim::Duration read_compute_ns = 100;

  /// Consistency level for reads (single-key reads and snapshot
  /// multi-gets) issued through shard::Client. Only observable in
  /// partial-replication mode; the kLinearizable default keeps
  /// full-replication runs byte-identical to pre-Client plans.
  shard::ConsistencyLevel read_level = shard::ConsistencyLevel::kLinearizable;
};

class Generator {
 public:
  explicit Generator(GeneratorConfig cfg);

  /// Expands the seed into the full request schedule. Pure: two calls
  /// with equal arguments return identical vectors.
  [[nodiscard]] static std::vector<Request> plan(const GeneratorConfig& cfg,
                                                 std::uint32_t node_count);

  /// The arrival config actually used (rate_rps folded into mean_gap_ns).
  [[nodiscard]] static ArrivalConfig effective_arrival(
      const GeneratorConfig& cfg);

  /// Drives the service behind `client` with the planned schedule and
  /// fills the request side of `report` (issued/completed counts and
  /// latency histograms, tagged by shard and operation). Completes when
  /// every request has finished; the caller runs the scheduler:
  ///
  ///   shard::Client client(store);
  ///   auto drive = gen.run(client, report);
  ///   sys.scheduler().run();
  ///   // drive is now finished; gen.done() is true
  ///
  /// The report's lock/root/ledger side is NOT filled here — call
  /// store.fill_report(report) afterwards.
  sim::Process run(shard::Client& client, stats::ServiceReport& report);

  /// Pre-Client entry point: wraps `store` in a Client and runs with the
  /// config's read level.
  [[deprecated("construct a shard::Client and use run(client, report)")]]
  sim::Process run(shard::ShardedStore& store, stats::ServiceReport& report);

  /// Registers client-side gauges on `sampler`: requests sitting in node
  /// FIFOs (arrived, not yet started) and requests in flight (started, not
  /// yet finished). `sampler` must outlive the run.
  void register_telemetry(telemetry::Sampler& sampler);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const GeneratorConfig& config() const { return cfg_; }

 private:
  struct NodeQueue {
    explicit NodeQueue(sim::Scheduler& sched) : ready(sched) {}
    std::deque<std::size_t> fifo;  ///< indices into plan_
    sim::Signal ready;
  };

  sim::Process worker(shard::Client& client, stats::ServiceReport& report,
                      dsm::NodeId n);
  /// Primary shard of a request — where its latency sample is filed.
  /// For transactions: the lowest involved ShardId.
  static shard::ShardId primary_shard(const shard::ShardedStore& store,
                                      const Request& r);

  GeneratorConfig cfg_;
  std::vector<Request> plan_;
  std::vector<std::unique_ptr<NodeQueue>> queues_;
  sim::Time base_ = 0;          ///< scheduler time when run() started
  std::uint64_t pushed_ = 0;    ///< arrivals delivered to node FIFOs
  std::uint64_t started_ = 0;   ///< requests a worker has begun serving
  std::uint64_t finished_ = 0;  ///< requests completed
  bool all_pushed_ = false;
  bool done_ = false;
};

}  // namespace optsync::load
