// The regular (non-optimistic) GWC queue lock (paper §2).
//
// A lock is an ordinary eagerly shared variable. A requester atomically
// writes -(its id) into the local copy; the sharing interface forwards the
// request to the group root, which grants immediately or queues the id.
// The grant (+id) and the free value propagate as sequenced group writes,
// so "a processor always receives exclusive access within one or one half
// round-trip time of the lock being freed" and grants always follow the
// previous holder's data writes.
//
// This is the standalone client used by workloads that manage the critical
// section themselves; OptimisticMutex::execute subsumes it when a prepared
// Section is available.
#pragma once

#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "sync/lock.hpp"

namespace optsync::sync {

class GwcQueueLock : public Lock {
 public:
  /// `lock` must be a lock variable of `sys`.
  GwcQueueLock(dsm::DsmSystem& sys, dsm::VarId lock);

  GwcQueueLock(const GwcQueueLock&) = delete;
  GwcQueueLock& operator=(const GwcQueueLock&) = delete;

  /// Requests the lock for node `n` and completes when the grant reaches
  /// the node's local memory. Use as: co_await lk.acquire(n).join();
  sim::Process acquire(dsm::NodeId n) override;

  /// Releases the lock (must follow the holder's last data write so GWC
  /// ordering carries data-before-release to every member).
  void release(dsm::NodeId n) override;

  /// True when node `n`'s local copy shows `n` as the holder.
  [[nodiscard]] bool held_by(dsm::NodeId n) const override;

  [[nodiscard]] dsm::VarId lock_var() const { return lock_; }

  /// Live counters (unified shape; the optimistic-path fields stay zero —
  /// this is the regular §2 protocol).
  [[nodiscard]] const LockStatsView& stats() const { return stats_; }
  [[nodiscard]] LockStatsView stats_view() const override { return stats_; }

 private:
  dsm::DsmSystem* sys_;
  dsm::VarId lock_;
  LockStatsView stats_;
};

}  // namespace optsync::sync
