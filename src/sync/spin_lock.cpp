#include "sync/spin_lock.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::sync {

TasSpinLock::TasSpinLock(net::Network& net, net::NodeId home, Config cfg)
    : net_(&net), home_(home), cfg_(cfg) {
  OPTSYNC_EXPECT(home < net.topology().size());
}

sim::Process TasSpinLock::acquire(net::NodeId n) {
  // Note: holder_ may still read as n while this node's previous release is
  // in flight; the test-and-set at the home node simply fails and retries.
  auto& sched = net_->scheduler();
  sim::Signal reply(sched);
  sim::Duration backoff = cfg_.backoff_base_ns;

  for (;;) {
    ++stats_.attempts;
    bool replied = false;
    bool won = false;
    net_->send(n, home_, cfg_.msg_bytes, "tas-req", [&] {
      // Test-and-set executes atomically at the home node on arrival.
      const bool ok = holder_ == kNoHolder;
      if (ok) holder_ = n;
      net_->send(home_, n, cfg_.msg_bytes, "tas-rep", [&, ok] {
        won = ok;
        replied = true;
        reply.notify_all();
      });
    });
    while (!replied) co_await reply.wait();
    if (won) break;
    co_await sim::delay(sched, backoff);
    backoff = std::min(backoff * 2, cfg_.backoff_max_ns);
  }
  ++stats_.acquisitions;
}

void TasSpinLock::release(net::NodeId n) {
  OPTSYNC_EXPECT(holder_ == n);
  net_->send(n, home_, cfg_.msg_bytes, "tas-rel", [this] {
    holder_ = kNoHolder;
    ++stats_.releases;
  });
}

}  // namespace optsync::sync
