// The unified lock abstraction + one shared stats shape.
//
// Before this interface the repo grew four lock-like classes, each with its
// own nested Stats struct: sync::GwcQueueLock, core::OptimisticMutex,
// core::MultiGroupMutex, and rt::RtOptimisticMutex. Benches and the
// per-lock metrics record (stats::LockStats) had to know every shape.
// sync::Lock collapses the contract to three operations plus an advisory
// speculation probe, and LockStatsView is the union of the old counters —
// a plain value snapshot every implementation can fill (the threaded
// runtime's mutex snapshots its atomics into one; the simulator locks hand
// out their live counters).
//
// Counters an implementation has no concept of stay zero: a plain queue
// lock never speculates, so its optimistic_* fields are 0; a mutex driven
// only through execute() counts executions alongside acquisitions.
#pragma once

#include <cstdint>

#include "dsm/types.hpp"
#include "simkern/coro.hpp"

namespace optsync::sync {

/// Value snapshot of a lock's accounting. Field names are the union of the
/// historical per-class Stats structs so call sites read the same way they
/// always did (`lk.stats().rollbacks`, `lk.stats().total_wait_ns`, ...).
struct LockStatsView {
  // --- queueing / blocking (every lock) -------------------------------
  std::uint64_t acquisitions = 0;   ///< ownership confirmations
  std::uint64_t releases = 0;       ///< FREE writes issued
  sim::Duration total_wait_ns = 0;  ///< request-to-grant, summed
  sim::Duration max_wait_ns = 0;

  // --- execution-path accounting (optimistic mutexes; zero elsewhere) --
  std::uint64_t executions = 0;           ///< execute() calls completed
  std::uint64_t optimistic_attempts = 0;  ///< speculative entries
  std::uint64_t optimistic_successes = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t regular_paths = 0;
  std::uint64_t context_switches = 0;  ///< blocking episodes that swapped
  std::uint64_t history_vetoes = 0;    ///< regular paths forced purely by
                                       ///< the EWMA history estimate
};

/// Abstract mutual-exclusion client over the simulated DSM substrate.
///
/// acquire() is a coroutine completing when ownership is confirmed in the
/// caller's local memory; release() must follow the holder's final data
/// writes so GWC ordering carries data-before-release to every member.
/// try_speculate() is advisory: "would an optimistic entry look profitable
/// on node n right now?" — locks without a speculation path always say no,
/// and a true answer promises nothing (the root still arbitrates).
class Lock {
 public:
  virtual ~Lock() = default;

  /// Requests the lock for node `n`; the returned Process completes when
  /// the grant reaches the node. Use as: co_await lk.acquire(n).join();
  virtual sim::Process acquire(dsm::NodeId n) = 0;

  /// Releases the lock held by node `n`.
  virtual void release(dsm::NodeId n) = 0;

  /// True when node `n`'s local state shows it as the holder.
  [[nodiscard]] virtual bool held_by(dsm::NodeId n) const = 0;

  /// Whether an optimistic (speculate-before-grant) entry looks profitable
  /// for node `n` right now. Purely advisory; default says never.
  [[nodiscard]] virtual bool try_speculate(dsm::NodeId n) const {
    (void)n;
    return false;
  }

  /// Snapshot of the lock's counters in the unified shape.
  [[nodiscard]] virtual LockStatsView stats_view() const = 0;
};

}  // namespace optsync::sync
