#include "sync/gwc_lock.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::sync {

using dsm::lock_grant_value;
using dsm::lock_request_value;

GwcQueueLock::GwcQueueLock(dsm::DsmSystem& sys, dsm::VarId lock)
    : sys_(&sys), lock_(lock) {
  OPTSYNC_EXPECT(sys.var(lock).kind == dsm::VarKind::kLock);
}

sim::Process GwcQueueLock::acquire(dsm::NodeId n) {
  auto& node = sys_->node(n);
  OPTSYNC_EXPECT(!held_by(n));  // no nested acquisition
  const sim::Time requested = sys_->scheduler().now();

  // Open a lock-wait umbrella span and hang the request's wire/queue legs
  // under it: the atomic_exchange below ships the request synchronously, so
  // repointing the node's context parent just around it is safe.
  auto* trc = sys_->tracer();
  telemetry::SpanContext octx =
      trc != nullptr ? trc->node_ctx(n) : telemetry::SpanContext{};
  telemetry::SpanId wait_span = 0;
  if (trc != nullptr && octx.valid()) {
    wait_span = trc->start_span(octx.trace, octx.span,
                                telemetry::SpanKind::kLockWait, n, requested);
    trc->set_node_parent(n, wait_span);
  }
  node.atomic_exchange(lock_, lock_request_value(n));
  if (wait_span != 0) trc->set_node_parent(n, octx.span);
  while (node.read(lock_) != lock_grant_value(n)) {
    co_await node.on_change(lock_).wait();
  }
  if (wait_span != 0) trc->end_span(wait_span, sys_->scheduler().now());

  const sim::Duration waited = sys_->scheduler().now() - requested;
  ++stats_.acquisitions;
  stats_.total_wait_ns += waited;
  stats_.max_wait_ns = std::max(stats_.max_wait_ns, waited);
}

void GwcQueueLock::release(dsm::NodeId n) {
  OPTSYNC_EXPECT(held_by(n));
  sys_->node(n).write(lock_, dsm::kLockFree);
  ++stats_.releases;
}

bool GwcQueueLock::held_by(dsm::NodeId n) const {
  return sys_->node(n).read(lock_) == lock_grant_value(n);
}

}  // namespace optsync::sync
