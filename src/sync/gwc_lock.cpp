#include "sync/gwc_lock.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::sync {

using dsm::lock_grant_value;
using dsm::lock_request_value;

GwcQueueLock::GwcQueueLock(dsm::DsmSystem& sys, dsm::VarId lock)
    : sys_(&sys), lock_(lock) {
  OPTSYNC_EXPECT(sys.var(lock).kind == dsm::VarKind::kLock);
}

sim::Process GwcQueueLock::acquire(dsm::NodeId n) {
  auto& node = sys_->node(n);
  OPTSYNC_EXPECT(!held_by(n));  // no nested acquisition
  const sim::Time requested = sys_->scheduler().now();

  node.atomic_exchange(lock_, lock_request_value(n));
  while (node.read(lock_) != lock_grant_value(n)) {
    co_await node.on_change(lock_).wait();
  }

  const sim::Duration waited = sys_->scheduler().now() - requested;
  ++stats_.acquisitions;
  stats_.total_wait_ns += waited;
  stats_.max_wait_ns = std::max(stats_.max_wait_ns, waited);
}

void GwcQueueLock::release(dsm::NodeId n) {
  OPTSYNC_EXPECT(held_by(n));
  sys_->node(n).write(lock_, dsm::kLockFree);
  ++stats_.releases;
}

bool GwcQueueLock::held_by(dsm::NodeId n) const {
  return sys_->node(n).read(lock_) == lock_grant_value(n);
}

}  // namespace optsync::sync
