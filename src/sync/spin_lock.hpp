// Test-and-set spin lock over demand-fetch remote access — the classical
// baseline the paper contrasts with queue locks (§1.3: "In distributed
// systems repeatedly testing locks produces too much network traffic").
//
// The lock word lives on a home node; every test-and-set is a full network
// round trip, retried with bounded exponential backoff. Used by the
// contention ablation bench to show why queue-based locks are the right
// substrate for DSM synchronization.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "simkern/coro.hpp"

namespace optsync::sync {

class TasSpinLock {
 public:
  struct Config {
    std::uint32_t msg_bytes = 16;
    sim::Duration backoff_base_ns = 400;
    sim::Duration backoff_max_ns = 51'200;
  };

  TasSpinLock(net::Network& net, net::NodeId home, Config cfg);
  TasSpinLock(net::Network& net, net::NodeId home)
      : TasSpinLock(net, home, Config{}) {}

  TasSpinLock(const TasSpinLock&) = delete;
  TasSpinLock& operator=(const TasSpinLock&) = delete;

  /// Spins (with backoff) until the test-and-set succeeds.
  /// Use as: co_await lk.acquire(n).join();
  sim::Process acquire(net::NodeId n);

  /// Sends the release to the home node. The lock frees when it arrives.
  void release(net::NodeId n);

  [[nodiscard]] bool held() const { return holder_ != kNoHolder; }
  [[nodiscard]] net::NodeId holder() const { return holder_; }

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t attempts = 0;  ///< test-and-set round trips issued
    std::uint64_t releases = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr net::NodeId kNoHolder = ~net::NodeId{0};

  net::Network* net_;
  net::NodeId home_;
  Config cfg_;
  net::NodeId holder_ = kNoHolder;
  Stats stats_;
};

}  // namespace optsync::sync
