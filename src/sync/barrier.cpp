#include "sync/barrier.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::sync {

EagerBarrier::EagerBarrier(dsm::DsmSystem& sys, dsm::GroupId g,
                           std::string name)
    : sys_(&sys), group_(g), members_(sys.group(g).members()) {
  arrivals_.reserve(members_.size());
  for (const dsm::NodeId m : members_) {
    arrivals_.push_back(
        sys.define_data(name + ".arrive." + std::to_string(m), g, 0));
  }
}

std::size_t EagerBarrier::index_of(dsm::NodeId n) const {
  const auto it = std::find(members_.begin(), members_.end(), n);
  OPTSYNC_EXPECT(it != members_.end());
  return static_cast<std::size_t>(it - members_.begin());
}

dsm::Word EagerBarrier::generation(dsm::NodeId n) const {
  return sys_->node(n).read(arrivals_[index_of(n)]);
}

sim::Process EagerBarrier::wait(dsm::NodeId n) {
  // Membership check throws synchronously (before the coroutine frame).
  const std::size_t me = index_of(n);
  return wait_impl(n, me);
}

sim::Process EagerBarrier::wait_impl(dsm::NodeId n, std::size_t me) {
  auto& node = sys_->node(n);
  const dsm::Word gen = node.read(arrivals_[me]) + 1;
  node.write(arrivals_[me], gen);  // single-writer: no lock needed

  // Chase the laggards: wait on whichever member's local copy is still
  // behind, one at a time. Each arrival is pushed here by eagersharing, so
  // the checks are free local reads.
  for (std::size_t j = 0; j < arrivals_.size(); ++j) {
    while (node.read(arrivals_[j]) < gen) {
      co_await node.on_change(arrivals_[j]).wait();
    }
  }
  ++stats_.episodes;
}

}  // namespace optsync::sync
