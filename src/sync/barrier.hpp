// A fully decentralized barrier on eagersharing.
//
// §2's single-writer principle generalized: every participant owns one
// arrival-counter variable (single writer — no lock needed), and everybody
// sums their *local copies* to detect that the generation is complete.
// Eagersharing pushes each arrival to all members unprompted, so the whole
// barrier costs exactly one shared write per participant per episode — no
// polling traffic, no lock manager, no coordinator.
#pragma once

#include <string>
#include <vector>

#include "dsm/system.hpp"
#include "simkern/coro.hpp"

namespace optsync::sync {

class EagerBarrier {
 public:
  /// Creates per-participant arrival variables in group `g` for exactly the
  /// group's members.
  EagerBarrier(dsm::DsmSystem& sys, dsm::GroupId g, std::string name);

  EagerBarrier(const EagerBarrier&) = delete;
  EagerBarrier& operator=(const EagerBarrier&) = delete;

  /// Enters the barrier on node `n` and completes when every member's
  /// arrival (as seen in n's local memory) reaches this episode.
  /// Use as: co_await bar.wait(n).join();
  sim::Process wait(dsm::NodeId n);

  /// Episodes completed at node `n` (its own arrival count).
  [[nodiscard]] dsm::Word generation(dsm::NodeId n) const;

  struct Stats {
    std::uint64_t episodes = 0;  ///< total wait() completions
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] std::size_t index_of(dsm::NodeId n) const;
  sim::Process wait_impl(dsm::NodeId n, std::size_t me);

  dsm::DsmSystem* sys_;
  dsm::GroupId group_;
  std::vector<dsm::NodeId> members_;
  std::vector<dsm::VarId> arrivals_;  ///< arrivals_[i] written only by
                                      ///< members_[i]
  Stats stats_;
};

}  // namespace optsync::sync
