// Per-lock observability record (tentpole of the metrics layer).
//
// One LockStats describes one *logical* lock — the paper's claims (Fig. 1
// idle time per section, Fig. 7 rollback behaviour, Fig. 8 method costs) are
// all per-lock statements, so every node's OptimisticMutex instance for the
// same lock variable feeds the same record. The simulation is single-
// threaded, so sharing needs no synchronization.
//
// core/ fills the acquisition-side fields (latencies, speculation outcomes,
// EWMA-history gating); dsm/ contributes the root's view (speculative writes
// it filtered). Benches serialize the record into their --metrics-out JSON.
#pragma once

#include <cstdint>
#include <string>

#include "stats/histogram.hpp"
#include "stats/json.hpp"
#include "sync/lock.hpp"

namespace optsync::stats {

struct LockStats {
  std::string name;  ///< lock variable name, e.g. "ctr.lock"

  Histogram acquire_ns;  ///< execute() entry -> lock ownership confirmed
  Histogram hold_ns;     ///< ownership confirmed -> release sent

  std::uint64_t acquisitions = 0;  ///< critical sections completed

  // Speculation outcomes (optimistic path only).
  std::uint64_t speculative_attempts = 0;  ///< sections begun speculatively
  std::uint64_t speculative_commits = 0;   ///< speculation survived to commit
  std::uint64_t rollbacks = 0;             ///< speculation undone mid-section

  // EWMA usage-history gate decisions at section entry.
  std::uint64_t history_allows = 0;  ///< predicted free -> went optimistic
  std::uint64_t history_vetoes = 0;  ///< predicted contended -> regular path

  /// Speculative mutex-data writes the group root filtered before they
  /// could become visible (dsm/root.cpp). Zero unless root filtering is on.
  std::uint64_t root_speculative_drops = 0;

  [[nodiscard]] double commit_rate() const {
    return speculative_attempts == 0
               ? 0.0
               : static_cast<double>(speculative_commits) /
                     static_cast<double>(speculative_attempts);
  }

  /// Accumulates another record (histograms bucket-wise, counters summed).
  void merge(const LockStats& other);

  /// Folds a lock's unified end-of-run counters (sync::LockStatsView) into
  /// this record — the one-shot alternative to the incremental feeding
  /// OptimisticMutex does through Config::lock_stats. Histograms are left
  /// untouched: a view carries only total/max wait, not a distribution.
  void absorb(const sync::LockStatsView& v);

  /// Serializes as one JSON object: counters plus min/mean/p50/p95/p99/max
  /// for each histogram. Caller is inside an array or keyed position.
  void write_json(JsonWriter& w) const;
};

}  // namespace optsync::stats
