#include "stats/lock_stats.hpp"

namespace optsync::stats {

namespace {
void write_histogram(JsonWriter& w, std::string_view key, const Histogram& h) {
  w.begin_object(key)
      .value("count", h.count())
      .value("min_ns", h.min())
      .value("mean_ns", h.mean())
      .value("p50_ns", h.p50())
      .value("p95_ns", h.p95())
      .value("p99_ns", h.p99())
      .value("max_ns", h.max())
      .end_object();
}
}  // namespace

void LockStats::merge(const LockStats& other) {
  acquire_ns.merge(other.acquire_ns);
  hold_ns.merge(other.hold_ns);
  acquisitions += other.acquisitions;
  speculative_attempts += other.speculative_attempts;
  speculative_commits += other.speculative_commits;
  rollbacks += other.rollbacks;
  history_allows += other.history_allows;
  history_vetoes += other.history_vetoes;
  root_speculative_drops += other.root_speculative_drops;
}

void LockStats::absorb(const sync::LockStatsView& v) {
  acquisitions += v.acquisitions;
  speculative_attempts += v.optimistic_attempts;
  speculative_commits += v.optimistic_successes;
  rollbacks += v.rollbacks;
  // Every speculative entry is, by definition, one the history gate allowed.
  history_allows += v.optimistic_attempts;
  history_vetoes += v.history_vetoes;
}

void LockStats::write_json(JsonWriter& w) const {
  w.begin_object()
      .value("name", name)
      .value("acquisitions", acquisitions)
      .value("speculative_attempts", speculative_attempts)
      .value("speculative_commits", speculative_commits)
      .value("rollbacks", rollbacks)
      .value("commit_rate", commit_rate())
      .value("history_allows", history_allows)
      .value("history_vetoes", history_vetoes)
      .value("root_speculative_drops", root_speculative_drops);
  write_histogram(w, "acquire", acquire_ns);
  write_histogram(w, "hold", hold_ns);
  w.end_object();
}

}  // namespace optsync::stats
