#include "stats/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace optsync::stats {

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue kNull;
  if (!is_object()) return kNull;
  const auto it = obj_->find(key);
  return it == obj_->end() ? kNull : it->second;
}

const JsonValue& JsonValue::operator[](std::size_t i) const {
  static const JsonValue kNull;
  if (!is_array() || i >= arr_->size()) return kNull;
  return (*arr_)[i];
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    JsonValue v;
    if (!parse_value(&v, 0)) {
      out.error = error_;
      out.offset = pos_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.error = "trailing characters after document";
      out.offset = pos_;
      return out;
    }
    out.value = std::move(v);
    out.ok = true;
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool expect(char c, const char* msg) {
    if (eof() || text_[pos_] != c) return fail(msg);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      *out = JsonValue(std::move(obj));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return fail("expected object key");
      skip_ws();
      if (!expect(':', "expected ':' after key")) return false;
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      obj.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        *out = JsonValue(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      *out = JsonValue(std::move(arr));
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        *out = JsonValue(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    std::string s;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (eof()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // The writer only escapes control characters, so ASCII is the
          // interesting range; encode the rest as UTF-8 for completeness.
          if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double d = std::strtod(tok.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    *out = JsonValue(d);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

JsonParseResult parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    JsonParseResult out;
    out.error = "cannot open file: " + path;
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return parse_json(text);
}

}  // namespace optsync::stats
