#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace optsync::stats {

unsigned Histogram::bucket_index(std::uint64_t v) {
  // Values below one full octave of sub-buckets are stored exactly; above
  // that, (octave, sub-bucket) with sub-buckets slicing the octave evenly.
  if (v < kSubBuckets) return static_cast<unsigned>(v);
  const unsigned octave = std::bit_width(v) - 1;  // >= kSubBits here
  const unsigned shift = octave - kSubBits;
  const unsigned sub = static_cast<unsigned>((v >> shift) & (kSubBuckets - 1));
  return (octave - kSubBits + 1) * kSubBuckets + sub;
}

std::int64_t Histogram::bucket_midpoint(unsigned idx) {
  if (idx < kSubBuckets) return static_cast<std::int64_t>(idx);
  const unsigned group = idx / kSubBuckets;  // >= 1
  const unsigned sub = idx % kSubBuckets;
  const std::uint64_t width = 1ull << (group - 1);
  const std::uint64_t low = (kSubBuckets + sub) * width;
  return static_cast<std::int64_t>(low + width / 2);
}

void Histogram::record(std::int64_t value) {
  const std::uint64_t v =
      value < 0 ? 0ull : static_cast<std::uint64_t>(value);
  buckets_[bucket_index(v)] += 1;
  if (count_ == 0) {
    min_ = max_ = value < 0 ? 0 : value;
  } else {
    min_ = std::min(min_, value < 0 ? 0 : value);
    max_ = std::max(max_, value < 0 ? 0 : value);
  }
  sum_ += value < 0 ? 0 : value;
  count_ += 1;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Rank of the q-th sample, 1-based. The epsilon absorbs FP noise in
  // q * count: 0.95 * 20 evaluates to 19.000000000000004, and a plain
  // ceil() would skip to rank 20 — an off-by-one that reported p95 of a
  // 20-sample distribution as its maximum. Clamped to [1, count].
  const double exact = q * static_cast<double>(count_);
  auto target = static_cast<std::uint64_t>(std::ceil(exact - 1e-9));
  target = std::clamp<std::uint64_t>(target, 1, count_);
  std::uint64_t cum = 0;
  for (unsigned i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      // Midpoint of the bucket, clamped to the observed range so p99 of a
      // tight distribution never reports a value outside [min, max].
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::summary() const {
  std::ostringstream out;
  out << "n=" << count_ << " min=" << min() << " p50=" << p50()
      << " p95=" << p95() << " p99=" << p99() << " max=" << max();
  return out.str();
}

}  // namespace optsync::stats
