#include "stats/service_report.hpp"

#include <sstream>

namespace optsync::stats {

std::uint64_t ServiceReport::issued() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) {
    for (const auto& o : s.ops) n += o.issued;
  }
  return n;
}

std::uint64_t ServiceReport::completed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) {
    for (const auto& o : s.ops) n += o.completed;
  }
  return n;
}

double ServiceReport::safe_rate(double count, sim::Time window_ns) {
  if (window_ns == 0) return 0.0;
  return count / sim::to_seconds(window_ns);
}

double ServiceReport::goodput_rps() const {
  return safe_rate(static_cast<double>(completed()), elapsed_ns);
}

double ServiceReport::shard_goodput_rps(std::size_t shard) const {
  if (shard >= shards.size()) return 0.0;
  double done = 0.0;
  for (const auto& o : shards[shard].ops) done += static_cast<double>(o.completed);
  return safe_rate(done, elapsed_ns);
}

std::uint32_t ServiceReport::drowning_shards() const {
  std::uint32_t n = 0;
  for (const auto& s : shards) n += s.drowning ? 1 : 0;
  return n;
}

Histogram ServiceReport::merged_latency(ServiceOp op) const {
  Histogram h;
  for (const auto& s : shards) h.merge(s.op(op).latency_ns);
  return h;
}

bool ServiceReport::serializable() const {
  for (const auto& s : shards) {
    if (!s.serializable()) return false;
  }
  return true;
}

std::string ServiceReport::format() const {
  std::ostringstream out;
  out << "service: " << shards.size() << " shards, " << completed() << "/"
      << issued() << " requests completed in " << sim::format_time(elapsed_ns)
      << "\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "  offered %.0f req/s, goodput %.0f req/s, %llu messages\n",
                offered_rps, goodput_rps(),
                static_cast<unsigned long long>(messages));
  out << line;
  out << "  shard  reads  writes  txns   rmws   abort%  w.p50       "
         "w.p99       w.p999      serializable  health\n";
  for (const auto& s : shards) {
    const auto& w = s.op(ServiceOp::kWrite).latency_ns;
    char health[64];
    if (s.drowning) {
      std::snprintf(health, sizeof health, "DROWNING (+%.0f req/s backlog)",
                    s.backlog_slope_per_s);
    } else {
      std::snprintf(health, sizeof health, "ok");
    }
    std::snprintf(
        line, sizeof line,
        "  %-6u %-6llu %-7llu %-6llu %-6llu %-7.1f %-11s %-11s %-11s %-13s "
        "%s\n",
        s.shard,
        static_cast<unsigned long long>(s.op(ServiceOp::kRead).completed),
        static_cast<unsigned long long>(s.op(ServiceOp::kWrite).completed),
        static_cast<unsigned long long>(s.op(ServiceOp::kTxn).completed),
        static_cast<unsigned long long>(s.op(ServiceOp::kRmw).completed),
        100.0 * s.txn_abort_rate(),
        sim::format_time(static_cast<sim::Time>(w.p50())).c_str(),
        sim::format_time(static_cast<sim::Time>(w.p99())).c_str(),
        sim::format_time(static_cast<sim::Time>(w.p999())).c_str(),
        s.serializable() ? "yes" : "NO (BUG)", health);
    out << line;
  }
  bool lease_active = false;
  for (const auto& s : shards) {
    lease_active = lease_active || s.lease_hits + s.lease_grants +
                                           s.lease_invalidations +
                                           s.remote_reads + s.forwarded_ops >
                                       0;
  }
  if (lease_active) {
    out << "  shard  hit%    hits     grants   invals   remote   "
           "forwarded\n";
    for (const auto& s : shards) {
      std::snprintf(
          line, sizeof line,
          "  %-6u %-7.1f %-8llu %-8llu %-8llu %-8llu %llu\n", s.shard,
          100.0 * s.lease_hit_rate(),
          static_cast<unsigned long long>(s.lease_hits),
          static_cast<unsigned long long>(s.lease_grants),
          static_cast<unsigned long long>(s.lease_invalidations),
          static_cast<unsigned long long>(s.remote_reads),
          static_cast<unsigned long long>(s.forwarded_ops));
      out << line;
    }
  }
  std::uint64_t total_aborts = 0;
  for (const auto& s : shards) total_aborts += s.txn_aborts;
  if (total_aborts > 0) {
    out << "  shard  aborts   clobber  validate dir-ep   sum-ok  "
           "hottest-stripe\n";
    for (const auto& s : shards) {
      if (s.txn_aborts == 0) continue;
      std::size_t hot = 0;
      for (std::size_t i = 1; i < s.stripe_conflicts.size(); ++i) {
        if (s.stripe_conflicts[i] > s.stripe_conflicts[hot]) hot = i;
      }
      const std::uint64_t hot_count =
          s.stripe_conflicts.empty() ? 0 : s.stripe_conflicts[hot];
      std::snprintf(
          line, sizeof line,
          "  %-6u %-8llu %-8llu %-8llu %-8llu %-7s %zu (%llu)\n", s.shard,
          static_cast<unsigned long long>(s.txn_aborts),
          static_cast<unsigned long long>(s.aborts_read_clobber),
          static_cast<unsigned long long>(s.aborts_validation),
          static_cast<unsigned long long>(s.aborts_dir_epoch),
          s.abort_reasons_consistent() ? "yes" : "NO(BUG)", hot,
          static_cast<unsigned long long>(hot_count));
      out << line;
    }
  }
  if (drowning_shards() > 0) {
    out << "  " << drowning_shards()
        << " shard(s) DROWNING: backlog grew for as long as load was "
           "offered (past saturation, not merely slow)\n";
  }
  return out.str();
}

}  // namespace optsync::stats
