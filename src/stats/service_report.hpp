// Service-wide SLO accounting for the sharded DSM service layer.
//
// One ServiceReport describes one service run: per-shard request counts and
// latency distributions tagged by operation class (read / write / txn),
// the shard lock's flight record (stats::LockStats), the shard root's
// sequencing/frame rollup, and the per-shard serializability ledger
// (final version word vs. writes committed under the lock — the
// counter-exactness invariant, per shard).
//
// load::Generator fills the request-side fields while it drives traffic;
// shard::ShardedStore fills the lock/root/ledger side at end of run
// (ShardedStore::fill_report). Benches serialize shards into their
// --metrics-out rows and locks arrays; format() renders the human table.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simkern/time.hpp"
#include "stats/histogram.hpp"
#include "stats/lock_stats.hpp"
#include "stats/metrics.hpp"

namespace optsync::stats {

/// Operation classes the service distinguishes. kTxn is a multi-key write
/// crossing shard (and therefore root) boundaries; kRmw is a multi-key
/// read-modify-write (YCSB-F idiom). Both commit through the store's
/// configured TxnMode (OCC or legacy MultiGroupMutex).
enum class ServiceOp { kRead = 0, kWrite = 1, kTxn = 2, kRmw = 3 };
inline constexpr std::size_t kServiceOpCount = 4;

constexpr std::string_view service_op_name(ServiceOp op) {
  switch (op) {
    case ServiceOp::kRead:
      return "read";
    case ServiceOp::kWrite:
      return "write";
    case ServiceOp::kTxn:
      return "txn";
    case ServiceOp::kRmw:
      return "rmw";
  }
  return "?";
}

/// Request-side accounting for one (shard, operation class) pair.
struct ServiceOpStats {
  std::uint64_t issued = 0;     ///< requests routed here (open-loop arrivals)
  std::uint64_t completed = 0;  ///< requests finished
  /// Arrival-to-completion latency, including client queueing delay — the
  /// open-loop (coordinated-omission-free) figure an SLO is stated over.
  Histogram latency_ns;
};

/// Everything the service knows about one shard at end of run.
struct ShardServiceStats {
  std::uint32_t shard = 0;
  std::string lock_name;

  std::array<ServiceOpStats, kServiceOpCount> ops;
  [[nodiscard]] ServiceOpStats& op(ServiceOp o) {
    return ops[static_cast<std::size_t>(o)];
  }
  [[nodiscard]] const ServiceOpStats& op(ServiceOp o) const {
    return ops[static_cast<std::size_t>(o)];
  }

  /// The shard lock's flight record (acquire/hold percentiles, speculation
  /// ledger). Filled by ShardedStore.
  LockStats lock;

  // --- root rollup (GroupRoot::Stats excerpt) -------------------------
  std::uint64_t sequenced = 0;
  std::uint64_t frames = 0;
  std::uint64_t max_frame_writes = 0;

  // --- serializability ledger -----------------------------------------
  /// Final value of the shard's version word, bumped once per committed
  /// write section. Must equal committed_writes (per-shard counter
  /// exactness: mutual exclusion + serializability, invariant 2).
  std::int64_t version = 0;
  std::uint64_t committed_writes = 0;

  // --- OCC transaction rollup (TxnMode::kOcc) ---------------------------
  /// Cross-shard transactions that committed / aborted / retried with
  /// this shard involved, and escalations to the irrevocable fallback.
  std::uint64_t txn_commits = 0;
  std::uint64_t txn_aborts = 0;
  std::uint64_t txn_retries = 0;
  std::uint64_t txn_fallbacks = 0;

  // --- abort forensics (telemetry/journal.hpp taxonomy) ------------------
  /// Reason partition of txn_aborts. Invariant (per shard and in total):
  /// aborts_read_clobber + aborts_validation + aborts_dir_epoch ==
  /// txn_aborts. Fallback escalations are counted in txn_fallbacks, not
  /// here — an escalation ends the optimistic phase, it is not an abort.
  std::uint64_t aborts_read_clobber = 0;
  std::uint64_t aborts_validation = 0;
  std::uint64_t aborts_dir_epoch = 0;
  /// Conflict heatmap: aborts attributed to each orec stripe of THIS
  /// shard (slots_per_shard entries + the elastic directory stripe last).
  std::vector<std::uint64_t> stripe_conflicts;

  /// The abort-reason partition sums back to the abort counter.
  [[nodiscard]] bool abort_reasons_consistent() const {
    return aborts_read_clobber + aborts_validation + aborts_dir_epoch ==
           txn_aborts;
  }

  /// aborts / (commits + aborts); 0 when the shard saw no transactions.
  [[nodiscard]] double txn_abort_rate() const {
    const double total =
        static_cast<double>(txn_commits) + static_cast<double>(txn_aborts);
    return total > 0.0 ? static_cast<double>(txn_aborts) / total : 0.0;
  }

  // --- lease tier rollup (shard::LeaseManager, partial replication) ------
  /// Client reads served from a valid local lease (zero messages).
  std::uint64_t lease_hits = 0;
  /// Lease grants issued by this shard's root (client read misses).
  std::uint64_t lease_grants = 0;
  /// Per-holder invalidation records shipped at frame flushes.
  std::uint64_t lease_invalidations = 0;
  /// Client reads answered by the root without installing a lease
  /// (ConsistencyLevel::kLinearizable, or the lease tier disabled).
  std::uint64_t remote_reads = 0;
  /// Write/txn operations forwarded to this shard's root for execution
  /// (partial replication routes every mutation through the root's node).
  std::uint64_t forwarded_ops = 0;

  /// Locally served share of client reads; 0 when no client read touched
  /// the shard (the safe_rate idiom: empty windows stay JSON-clean).
  [[nodiscard]] double lease_hit_rate() const {
    const double total = static_cast<double>(lease_hits) +
                         static_cast<double>(lease_grants) +
                         static_cast<double>(remote_reads);
    return total > 0.0 ? static_cast<double>(lease_hits) / total : 0.0;
  }

  // --- elastic fabric rollup (src/elastic/; zero on a static fabric) -----
  /// Node the shard's root sequenced on at end of run — the *effective*
  /// placement, after any root_stride wrap or online migration.
  std::uint32_t root_node = 0;
  std::uint64_t migrations = 0;  ///< root handoffs involving this shard
  std::uint64_t splits = 0;      ///< stripe ranges donated away (on src)
  std::uint64_t merges = 0;      ///< donated ranges taken back (on src)
  std::uint64_t promotions = 0;  ///< hot keys pinned to a hot group (on src)
  std::uint64_t demotions = 0;   ///< pinned keys returned (on home shard)
  std::uint64_t redirects = 0;   ///< stale-epoch ops re-routed/probed here

  // --- overload verdict (telemetry::flag_overload) ---------------------
  /// True when the shard's backlog series shows sustained growth: the
  /// shard is past saturation ("drowning"), not merely slow. Stays false
  /// when no telemetry sampler observed the run.
  bool drowning = false;
  double backlog_slope_per_s = 0.0;  ///< trailing least-squares backlog slope
  double final_backlog = 0.0;        ///< issued - completed at the last sample
  double peak_backlog = 0.0;

  [[nodiscard]] bool serializable() const {
    return version == static_cast<std::int64_t>(committed_writes);
  }
};

struct ServiceReport {
  std::vector<ShardServiceStats> shards;
  sim::Time elapsed_ns = 0;
  std::uint64_t messages = 0;
  double offered_rps = 0.0;  ///< open-loop offered load (filled by generator)
  FaultReport faults;

  [[nodiscard]] std::uint64_t issued() const;
  [[nodiscard]] std::uint64_t completed() const;

  /// `count / window`, with zero-duration windows mapping to 0 rather
  /// than inf/NaN — empty or instant runs must stay JSON-serializable.
  [[nodiscard]] static double safe_rate(double count, sim::Time window_ns);

  /// Completed requests per second of simulated time ("goodput" — every
  /// completed request did real, serializable work).
  [[nodiscard]] double goodput_rps() const;

  /// One shard's completed requests per second over the run window.
  [[nodiscard]] double shard_goodput_rps(std::size_t shard) const;

  /// Shards flagged `drowning` by the overload detector.
  [[nodiscard]] std::uint32_t drowning_shards() const;

  /// All shards' latency distributions for `op`, merged.
  [[nodiscard]] Histogram merged_latency(ServiceOp op) const;

  /// Every shard's version word matches its committed-write count.
  [[nodiscard]] bool serializable() const;

  /// Human-readable summary: service totals plus one row per shard with
  /// completed counts and write p50/p99/p999.
  [[nodiscard]] std::string format() const;
};

}  // namespace optsync::stats
