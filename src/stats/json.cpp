#include "stats/json.hpp"

#include <cmath>
#include <cstdio>

namespace optsync::stats {

void JsonWriter::write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void JsonWriter::comma() {
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    *out_ << ',';
  }
  indent();
}

void JsonWriter::indent() {
  if (!pretty_) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < first_.size(); ++i) *out_ << "  ";
}

void JsonWriter::key_prefix(std::string_view key) {
  comma();
  write_escaped(*out_, key);
  *out_ << (pretty_ ? ": " : ":");
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  *out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  *out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool was_empty = first_.back();
  first_.pop_back();
  if (!was_empty) indent();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  *out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  *out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool was_empty = first_.back();
  first_.pop_back();
  if (!was_empty) indent();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view key, std::string_view v) {
  key_prefix(key);
  write_escaped(*out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view key, double v) {
  key_prefix(key);
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    *out_ << buf;
  } else {
    *out_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view key, std::int64_t v) {
  key_prefix(key);
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view key, std::uint64_t v) {
  key_prefix(key);
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view key, bool v) {
  key_prefix(key);
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  write_escaped(*out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    *out_ << buf;
  } else {
    *out_ << "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  *out_ << v;
  return *this;
}

}  // namespace optsync::stats
