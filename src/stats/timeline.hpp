// Interval recording + ASCII Gantt rendering, used to regenerate the
// paper's timing diagrams (Fig. 1) and the rollback interaction (Fig. 7).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "simkern/scheduler.hpp"
#include "simkern/time.hpp"

namespace optsync::stats {

/// What a processor was doing during an interval. The glyphs are what the
/// ASCII renderer paints.
enum class Activity : char {
  kCompute = '#',   ///< useful local computation
  kMutex = 'M',     ///< computing inside the critical section
  kWait = '.',      ///< idle, waiting for a lock / data
  kRollback = 'R',  ///< restoring journal state
  kTransfer = '~',  ///< waiting on an explicit data transfer
};

/// Records per-lane (usually per-CPU) activity intervals.
class Timeline {
 public:
  explicit Timeline(std::size_t lanes);

  void record(std::size_t lane, sim::Time start, sim::Time end, Activity a);

  /// Adds a point annotation (rendered in the legend with its time).
  void annotate(std::size_t lane, sim::Time at, std::string text);

  /// Renders all lanes over [0, horizon] scaled to `width` columns.
  void render(std::ostream& os, sim::Time horizon, std::size_t width = 96,
              const std::vector<std::string>& lane_names = {}) const;

  /// Total time lane spent in activity `a` within [0, horizon].
  [[nodiscard]] sim::Duration total(std::size_t lane, Activity a) const;

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

 private:
  struct Interval {
    sim::Time start;
    sim::Time end;
    Activity activity;
  };
  struct Annotation {
    sim::Time at;
    std::string text;
  };
  std::vector<std::vector<Interval>> lanes_;
  std::vector<std::vector<Annotation>> notes_;
};

/// RAII helper: records an interval from construction to stop()/destruction.
class ScopedActivity {
 public:
  ScopedActivity(Timeline& tl, std::size_t lane, Activity a,
                 const sim::Scheduler& sched);
  ~ScopedActivity();
  void stop();

 private:
  Timeline* tl_;
  std::size_t lane_;
  Activity activity_;
  const sim::Scheduler* sched_;
  sim::Time start_;
  bool stopped_ = false;
};

}  // namespace optsync::stats
