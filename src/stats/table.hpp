// Plain-text table / CSV rendering for the figure benches.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace optsync::stats {

/// Right-aligned fixed-width text table with a header row, plus CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optsync::stats
