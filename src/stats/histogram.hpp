// Log-bucketed latency histogram (HDR style).
//
// Values land in buckets indexed by (octave, linear sub-bucket): the octave
// is floor(log2(v)) and each octave is split into 2^kSubBits equal-width
// sub-buckets, bounding the relative quantization error at 1/2^kSubBits
// (6.25% with kSubBits = 4). That is plenty for latency percentiles — the
// paper's latency claims span orders of magnitude, not single percent — and
// keeps the footprint fixed (64 octaves x 16 sub-buckets of u64) so a
// histogram can sit inside every per-lock record without heap churn.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace optsync::stats {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  static constexpr unsigned kOctaves = 64;

  /// Records one sample. Negative values clamp to zero (durations are
  /// non-negative by construction; clamping keeps a clock quirk from
  /// corrupting the distribution).
  void record(std::int64_t value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1], e.g. 0.5 / 0.95 / 0.99. Returns the
  /// representative (midpoint) value of the bucket holding the q-th sample;
  /// exact min/max are returned at the extremes. 0 when empty.
  [[nodiscard]] std::int64_t percentile(double q) const;

  [[nodiscard]] std::int64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::int64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::int64_t p99() const { return percentile(0.99); }
  [[nodiscard]] std::int64_t p999() const { return percentile(0.999); }

  /// Accumulates another histogram into this one (bucket-wise).
  void merge(const Histogram& other);

  void reset();

  /// One-line human-readable summary: "n=… min=… p50=… p95=… p99=… max=…".
  [[nodiscard]] std::string summary() const;

 private:
  static unsigned bucket_index(std::uint64_t v);
  static std::int64_t bucket_midpoint(unsigned idx);

  std::array<std::uint64_t, kOctaves * kSubBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace optsync::stats
