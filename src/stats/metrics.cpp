// metrics.hpp is header-only; this TU exists so the module owns a .o and
// future non-inline additions have a home.
#include "stats/metrics.hpp"
