#include "stats/metrics.hpp"

#include <sstream>

namespace optsync::stats {

FaultReport collect_fault_report(const net::NetworkStats& net,
                                 const net::ReliableStats& rel) {
  FaultReport r;
  r.drops_injected = net.drops_injected;
  r.dups_injected = net.dups_injected;
  r.delays_injected = net.delays_injected;
  r.retransmits = rel.retransmits;
  r.dup_suppressed = rel.dup_suppressed;
  r.acks_sent = rel.acks_sent;
  r.acks_piggybacked = rel.acks_piggybacked;
  r.expirations = rel.expirations;
  r.expired_acked = rel.expired_acked;
  r.revivals = rel.revivals;
  r.max_delivery_delay_ns = rel.max_delivery_delay_ns;
  return r;
}

std::string format_fault_report(const FaultReport& r) {
  std::ostringstream out;
  auto row = [&out](const char* key, std::uint64_t value) {
    out << "  " << key;
    for (std::size_t i = std::string(key).size(); i < 24; ++i) out << ' ';
    out << value << "\n";
  };
  row("drops injected", r.drops_injected);
  row("dups injected", r.dups_injected);
  row("delays injected", r.delays_injected);
  row("retransmits", r.retransmits);
  row("dups suppressed", r.dup_suppressed);
  row("acks sent", r.acks_sent);
  row("acks piggybacked", r.acks_piggybacked);
  row("retransmit-cap hits", r.expirations);
  row("expired-then-acked", r.expired_acked);
  row("revivals", r.revivals);
  out << "  max delivery delay      "
      << sim::format_time(r.max_delivery_delay_ns) << "\n";
  return out.str();
}

std::string fault_report_csv_header() {
  return "drops_injected,dups_injected,delays_injected,retransmits,"
         "dup_suppressed,acks_sent,acks_piggybacked,expirations,"
         "expired_acked,revivals,max_delivery_delay_ns";
}

std::string fault_report_csv_row(const FaultReport& r) {
  std::ostringstream out;
  out << r.drops_injected << "," << r.dups_injected << ","
      << r.delays_injected << "," << r.retransmits << "," << r.dup_suppressed
      << "," << r.acks_sent << "," << r.acks_piggybacked << ","
      << r.expirations << "," << r.expired_acked << "," << r.revivals << ","
      << r.max_delivery_delay_ns;
  return out.str();
}

}  // namespace optsync::stats
