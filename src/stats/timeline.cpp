#include "stats/timeline.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::stats {

Timeline::Timeline(std::size_t lanes) : lanes_(lanes), notes_(lanes) {}

void Timeline::record(std::size_t lane, sim::Time start, sim::Time end,
                      Activity a) {
  OPTSYNC_EXPECT(lane < lanes_.size());
  OPTSYNC_EXPECT(start <= end);
  if (start == end) return;
  lanes_[lane].push_back(Interval{start, end, a});
}

void Timeline::annotate(std::size_t lane, sim::Time at, std::string text) {
  OPTSYNC_EXPECT(lane < lanes_.size());
  notes_[lane].push_back(Annotation{at, std::move(text)});
}

void Timeline::render(std::ostream& os, sim::Time horizon, std::size_t width,
                      const std::vector<std::string>& lane_names) const {
  OPTSYNC_EXPECT(width >= 8);
  if (horizon == 0) horizon = 1;

  std::size_t label_width = 6;
  for (const auto& n : lane_names) label_width = std::max(label_width, n.size());

  auto col = [&](sim::Time t) {
    return std::min(width - 1,
                    static_cast<std::size_t>(static_cast<double>(t) /
                                             static_cast<double>(horizon) *
                                             static_cast<double>(width)));
  };

  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    std::string row(width, ' ');
    for (const auto& iv : lanes_[lane]) {
      if (iv.start >= horizon) continue;
      const std::size_t c0 = col(iv.start);
      const std::size_t c1 = col(std::min(iv.end, horizon));
      for (std::size_t c = c0; c <= c1 && c < width; ++c) {
        row[c] = static_cast<char>(iv.activity);
      }
    }
    std::string name =
        lane < lane_names.size() ? lane_names[lane] : "lane" + std::to_string(lane);
    name.resize(label_width, ' ');
    os << name << " |" << row << "|\n";
    for (const auto& note : notes_[lane]) {
      os << std::string(label_width, ' ') << "  @" << sim::format_time(note.at)
         << ": " << note.text << "\n";
    }
  }
  os << std::string(label_width, ' ') << "  0" << std::string(width - 4, ' ')
     << sim::format_time(horizon) << "\n";
  os << std::string(label_width, ' ')
     << "  legend: #=compute M=mutex-section .=wait R=rollback ~=transfer\n";
}

sim::Duration Timeline::total(std::size_t lane, Activity a) const {
  OPTSYNC_EXPECT(lane < lanes_.size());
  sim::Duration sum = 0;
  for (const auto& iv : lanes_[lane]) {
    if (iv.activity == a) sum += iv.end - iv.start;
  }
  return sum;
}

ScopedActivity::ScopedActivity(Timeline& tl, std::size_t lane, Activity a,
                               const sim::Scheduler& sched)
    : tl_(&tl), lane_(lane), activity_(a), sched_(&sched),
      start_(sched.now()) {}

ScopedActivity::~ScopedActivity() { stop(); }

void ScopedActivity::stop() {
  if (stopped_) return;
  stopped_ = true;
  tl_->record(lane_, start_, sched_->now(), activity_);
}

}  // namespace optsync::stats
