// Minimal streaming JSON writer for metrics and trace export.
//
// No external dependency and no DOM: benches stream a metrics object and the
// Chrome-trace exporter streams tens of thousands of event records, so the
// writer appends directly to an ostream with an explicit nesting stack. The
// writer inserts commas automatically; callers just open/close containers
// and emit keyed or bare values in order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace optsync::stats {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = false)
      : out_(&out), pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  JsonWriter& value(std::string_view key, std::string_view v);
  JsonWriter& value(std::string_view key, const char* v) {
    return value(key, std::string_view(v));
  }
  JsonWriter& value(std::string_view key, double v);
  JsonWriter& value(std::string_view key, std::int64_t v);
  JsonWriter& value(std::string_view key, std::uint64_t v);
  JsonWriter& value(std::string_view key, int v) {
    return value(key, static_cast<std::int64_t>(v));
  }
  JsonWriter& value(std::string_view key, unsigned v) {
    return value(key, static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(std::string_view key, bool v);

  /// Bare (unkeyed) values, for array elements.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);

  /// Writes a JSON string literal (quoted + escaped) to `out`.
  static void write_escaped(std::ostream& out, std::string_view s);

 private:
  void comma();
  void indent();
  void key_prefix(std::string_view key);

  std::ostream* out_;
  bool pretty_;
  std::vector<bool> first_;  // per nesting level: no element emitted yet
};

}  // namespace optsync::stats
