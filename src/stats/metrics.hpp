// Efficiency and speedup accounting (paper §3.1, §4.1).
//
// "Speedup is average processor efficiency times network size. Efficiency is
// the percentage of peak processor speed." Workloads report useful compute
// time per node; network power = (sum of useful time) / elapsed time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/reliable_channel.hpp"
#include "net/topology.hpp"
#include "simkern/time.hpp"

namespace optsync::stats {

class EfficiencyMeter {
 public:
  explicit EfficiencyMeter(std::size_t nodes) : useful_(nodes, 0) {}

  /// Credits `d` nanoseconds of useful (peak-speed) computation to node `n`.
  void add_useful(net::NodeId n, sim::Duration d) { useful_.at(n) += d; }

  /// Fraction of `elapsed` node `n` spent computing usefully.
  [[nodiscard]] double efficiency(net::NodeId n, sim::Time elapsed) const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(useful_.at(n)) /
                              static_cast<double>(elapsed);
  }

  /// Average efficiency over all nodes.
  [[nodiscard]] double average_efficiency(sim::Time elapsed) const {
    return network_power(elapsed) / static_cast<double>(useful_.size());
  }

  /// "Network power": average efficiency times network size — equivalently
  /// the equivalent number of fully-busy processors.
  [[nodiscard]] double network_power(sim::Time elapsed) const {
    if (elapsed == 0) return 0.0;
    std::uint64_t sum = 0;
    for (const auto u : useful_) sum += u;
    return static_cast<double>(sum) / static_cast<double>(elapsed);
  }

  [[nodiscard]] sim::Duration useful(net::NodeId n) const {
    return useful_.at(n);
  }
  [[nodiscard]] std::size_t nodes() const { return useful_.size(); }

  void reset() { useful_.assign(useful_.size(), 0); }

 private:
  std::vector<sim::Duration> useful_;
};

/// One row of fault/reliability accounting for benches and the CLI: what
/// the injector did to the wire and what the reliable layer paid to hide
/// it. Collected from NetworkStats + ReliableStats so workload results can
/// carry the counters without knowing the layering.
struct FaultReport {
  std::uint64_t drops_injected = 0;
  std::uint64_t dups_injected = 0;
  std::uint64_t delays_injected = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_piggybacked = 0;  ///< acks that rode a data packet free
  std::uint64_t expirations = 0;  ///< retransmit-cap hits: should stay 0
  std::uint64_t expired_acked = 0;  ///< abandoned packets later acked anyway
  std::uint64_t revivals = 0;       ///< abandoned packets resurrected by acks
  sim::Duration max_delivery_delay_ns = 0;

  [[nodiscard]] bool quiet() const {
    return drops_injected == 0 && dups_injected == 0 &&
           delays_injected == 0 && retransmits == 0 && dup_suppressed == 0;
  }
};

FaultReport collect_fault_report(const net::NetworkStats& net,
                                 const net::ReliableStats& rel);

/// Multi-line human-readable rendering (one "  key  value" row per field).
std::string format_fault_report(const FaultReport& r);

/// CSV fragments, for appending to a bench's row/header.
std::string fault_report_csv_header();
std::string fault_report_csv_row(const FaultReport& r);

}  // namespace optsync::stats
