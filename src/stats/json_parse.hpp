// Minimal recursive-descent JSON parser for the offline analyzers.
//
// dsm_inspect (tools/) consumes the JSON artifacts the benches write
// (--metrics-out, --journal-out) without any third-party dependency, so
// this is a small, strict-enough reader for exactly that: the subset of
// JSON stats::JsonWriter emits (objects, arrays, strings with the standard
// escapes, doubles/integers, booleans, null). Numbers are stored as both
// double and int64 views; strings are unescaped. Errors carry a byte
// offset. Not a general-purpose validator — unknown \u escapes are kept
// as-is rather than decoded to UTF-8 beyond the BMP-ASCII range.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace optsync::stats {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Ordered map: iteration order follows key order, which is stable and
/// good enough for reporting (writer emission order is not preserved).
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), num_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : type_(Type::kArray),
        arr_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : type_(Type::kObject),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // --- typed access (loose: wrong type yields the fallback) --------------
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t fallback = 0) const {
    return is_number() && num_ >= 0 ? static_cast<std::uint64_t>(num_)
                                    : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }
  [[nodiscard]] const JsonArray& as_array() const {
    static const JsonArray kEmpty;
    return is_array() ? *arr_ : kEmpty;
  }
  [[nodiscard]] const JsonObject& as_object() const {
    static const JsonObject kEmpty;
    return is_object() ? *obj_ : kEmpty;
  }

  // --- navigation --------------------------------------------------------
  /// Object member lookup; a null value for absent keys / non-objects, so
  /// lookups chain: v["a"]["b"].as_int().
  [[nodiscard]] const JsonValue& operator[](std::string_view key) const;
  /// Array element; null when out of range / not an array.
  [[nodiscard]] const JsonValue& operator[](std::size_t i) const;
  [[nodiscard]] bool contains(std::string_view key) const {
    return is_object() && obj_->find(key) != obj_->end();
  }
  [[nodiscard]] std::size_t size() const {
    if (is_array()) return arr_->size();
    if (is_object()) return obj_->size();
    return 0;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // shared_ptr keeps JsonValue copyable/movable with an incomplete
  // recursive payload and makes subtree sharing cheap.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

struct JsonParseResult {
  JsonValue value;
  bool ok = false;
  std::string error;        ///< empty when ok
  std::size_t offset = 0;   ///< byte offset of the error
};

/// Parses one JSON document (trailing whitespace allowed, trailing junk is
/// an error). Depth-limited to keep malicious inputs from overflowing the
/// stack.
[[nodiscard]] JsonParseResult parse_json(std::string_view text);

/// Convenience: reads the file and parses it; IO errors surface through
/// the same JsonParseResult error channel.
[[nodiscard]] JsonParseResult parse_json_file(const std::string& path);

}  // namespace optsync::stats
