#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

#include "simkern/assert.hpp"

namespace optsync::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OPTSYNC_EXPECT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  OPTSYNC_EXPECT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << row[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace optsync::stats
