// Priority queue of timed events with stable FIFO ordering and cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "simkern/time.hpp"

namespace optsync::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Min-heap of events ordered by (time, insertion sequence).
///
/// The sequence tie-break makes the kernel fully deterministic: two events
/// scheduled for the same instant always fire in scheduling order, so a given
/// seed reproduces a simulation bit-for-bit.
///
/// Cancellation is lazy: cancel() is O(1) — it moves the id from the live-id
/// set to the tombstone set — and the heap entry is physically dropped when
/// it reaches the top. The reliable channel arms one timer per transmission
/// and cancels one per ack, so cancel sits on the per-message hot path.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Inserts an event; returns an id usable with cancel().
  EventId push(Time when, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ids_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_ids_.size(); }

  /// Time of the earliest live event; kNever when empty.
  /// Amortized O(log n): lazily discards cancelled tombstones at the top.
  [[nodiscard]] Time next_time();

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Popped {
    Time time;
    EventId id;
    Callback callback;
  };
  Popped pop();

  /// Drops all events.
  void clear();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> live_ids_;  ///< ids in the heap, not cancelled
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace optsync::sim
