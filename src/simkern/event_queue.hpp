// Priority queue of timed events with stable FIFO ordering and cancellation.
#pragma once

#include <cstdint>
#include <vector>

#include "simkern/time.hpp"
#include "util/small_fn.hpp"

namespace optsync::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
/// Encodes (generation << 32 | slot); generations start at 1, so a valid id
/// is never 0 — callers use 0 as their "no timer armed" sentinel.
using EventId = std::uint64_t;

/// Min-heap of events ordered by (time, insertion sequence).
///
/// The sequence tie-break makes the kernel fully deterministic: two events
/// scheduled for the same instant always fire in scheduling order, so a given
/// seed reproduces a simulation bit-for-bit.
///
/// Layout: heap entries are 24-byte PODs carrying only (time, seq, slot,
/// generation); callbacks live in a parallel slot table recycled through a
/// freelist. push and cancel are allocation-free O(1)/O(log n) — the
/// reliable channel arms one retransmit timer per transmission and cancels
/// one per ack, so both sit on the per-message hot path. cancel() frees the
/// slot (and destroys the callback) immediately; the stale heap entry is
/// dropped lazily at the top, and the heap is compacted in place whenever
/// dead entries outnumber live ones, so arm/cancel storms cannot grow
/// memory without bound (the old tombstone-set design leaked every
/// cancelled id that never reached the top).
class EventQueue {
 public:
  using Callback = util::SmallFn<void()>;

  /// Inserts an event; returns an id usable with cancel().
  EventId push(Time when, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event; kNever when empty.
  /// Amortized O(log n): lazily discards dead entries at the top.
  [[nodiscard]] Time next_time();

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Popped {
    Time time;
    EventId id;
    Callback callback;
  };
  Popped pop();

  /// Drops all events. Slot capacity is retained; every outstanding id is
  /// invalidated (its generation is bumped), so a stale id from before the
  /// clear can never cancel an event armed after it.
  void clear();

  // --- introspection (bounded-memory regression tests, kernel bench) ----
  /// Heap entries currently held, including dead ones awaiting compaction.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }
  /// Callback slots ever created (the table's high-water mark).
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  /// Cancelled entries still physically in the heap.
  [[nodiscard]] std::size_t dead_entries() const { return dead_in_heap_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// a fires strictly before b.
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // 4-ary min-heap. Pops dominate the kernel (a same-time multicast burst
  // pushes with one comparison each — the parent's smaller seq stops the
  // sift immediately — but every pop sifts down the full depth), and a
  // 4-ary sift-down halves the depth of a binary one while reading its four
  // 24-byte children from at most two cache lines. Measured on the pop-
  // heavy dispatch mix: ~25% cheaper per event at 32k pending.
  static constexpr std::size_t kArity = 4;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].gen == e.gen;
  }

  /// Bumps the slot's generation (invalidating its current id), destroys
  /// the callback, and returns the slot to the freelist.
  void free_slot(std::uint32_t slot);

  void drop_dead_top();
  void maybe_compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::size_t dead_in_heap_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace optsync::sim
