// Contract checking for the library (CppCoreGuidelines I.6/I.8 style).
//
// Violations throw ContractViolation so tests can assert on misuse, and so a
// failed invariant inside a long simulation surfaces with context instead of
// silently corrupting results.
#pragma once

#include <stdexcept>
#include <string>

namespace optsync {

/// Thrown when a precondition, postcondition, or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace optsync

#define OPTSYNC_EXPECT(cond)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::optsync::detail::contract_fail("precondition", #cond, __FILE__,    \
                                       __LINE__);                          \
  } while (false)

#define OPTSYNC_ENSURE(cond)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::optsync::detail::contract_fail("invariant", #cond, __FILE__,       \
                                       __LINE__);                          \
  } while (false)
