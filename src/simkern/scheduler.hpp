// The discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <functional>

#include "simkern/event_queue.hpp"
#include "simkern/time.hpp"

namespace optsync::sim {

/// Single-threaded deterministic discrete-event scheduler.
///
/// Everything in the simulated world (network message arrivals, CPU compute
/// completions, interrupt deliveries) is an event. Events at equal times fire
/// in scheduling order, so simulations are reproducible.
///
/// The scheduler is deliberately not thread-safe: the whole point of the
/// simulated substrate is determinism. The threaded runtime under rt/ covers
/// real concurrency.
class Scheduler {
 public:
  /// Small-buffer callable (util::SmallFn): every substrate closure fits the
  /// inline buffer, so scheduling an event allocates nothing.
  using Callback = EventQueue::Callback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when`.
  /// Precondition: when >= now() (the simulation cannot affect its past).
  EventId at(Time when, Callback cb);

  /// Schedules `cb` to run `delay` from now.
  EventId after(Duration delay, Callback cb) {
    return at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Schedules a housekeeping event: one that observes the simulation
  /// (telemetry samplers, control loops) rather than being part of it.
  /// Housekeeping loops re-arm themselves only while the simulation still
  /// has real work — but they must not count themselves, or EACH OTHER, as
  /// that work: two loops each re-arming "while !idle()" keep the queue
  /// non-empty forever and run() never returns. Arm through this method
  /// and test busy() instead of !idle().
  template <typename F>
  EventId after_housekeeping(Duration delay, F&& f) {
    ++housekeeping_armed_;
    return after(delay, [this, f = std::forward<F>(f)]() mutable {
      --housekeeping_armed_;
      f();
    });
  }

  /// Cancels an event armed with after_housekeeping().
  bool cancel_housekeeping(EventId id) {
    const bool live = queue_.cancel(id);
    if (live) --housekeeping_armed_;
    return live;
  }

  /// True while any non-housekeeping event is pending.
  [[nodiscard]] bool busy() const {
    return queue_.size() > housekeeping_armed_;
  }

  /// Runs a single event if one is pending. Returns false when idle.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  /// Returns the number of events executed by this call.
  std::uint64_t run();

  /// Runs events with time <= deadline; leaves later events pending.
  /// Afterwards now() == min(deadline, time the queue drained).
  std::uint64_t run_until(Time deadline);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// True when no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events executed over the scheduler's lifetime.
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Observes every dispatched event (fired after the clock advances,
  /// before the callback runs). Used by the flight recorder; nullptr
  /// removes it. Must not schedule or cancel events.
  using DispatchHook = std::function<void(Time, EventId)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_ = std::move(hook); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t processed_ = 0;
  std::size_t housekeeping_armed_ = 0;
  DispatchHook dispatch_;
};

}  // namespace optsync::sim
