// C++20 coroutine processes for the discrete-event kernel.
//
// A simulated CPU program is written as a coroutine returning Process:
//
//   sim::Process worker(sim::Scheduler& sched, ...) {
//     co_await sim::delay(sched, 500);     // compute for 500 ns
//     co_await queue_not_empty.wait();     // block on a Signal
//     ...
//   }
//
// Processes start eagerly (they run until their first suspension when
// created) and are resumed by scheduler events, never recursively, so the
// event-at-a-time determinism of the kernel is preserved.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "simkern/assert.hpp"
#include "simkern/scheduler.hpp"

namespace optsync::sim {

namespace detail {
/// Shared completion record: lets Process handles outlive the coroutine
/// frame and lets other coroutines join on completion.
struct ProcessState {
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> joiners;
};
}  // namespace detail

/// Handle to a running simulated process.
///
/// The coroutine frame owns itself (it is destroyed when the coroutine runs
/// to completion); Process only holds the shared completion record. Dropping
/// a Process handle therefore does NOT cancel the process — simulated
/// programs run to completion like real ones.
class [[nodiscard]] Process {
 public:
  struct promise_type {
    std::shared_ptr<detail::ProcessState> state =
        std::make_shared<detail::ProcessState>();

    Process get_return_object() { return Process(state); }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto state = h.promise().state;
        state->done = true;
        auto joiners = std::move(state->joiners);
        state->joiners.clear();
        h.destroy();
        // Resume joiners after destroying the frame: a joiner may itself
        // complete and release resources the finished process referenced.
        for (auto j : joiners) j.resume();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { state->error = std::current_exception(); }
  };

  Process() = default;

  /// True once the coroutine has run to completion (normally or by throwing).
  [[nodiscard]] bool done() const { return state_ && state_->done; }

  /// Rethrows the exception that terminated the process, if any.
  void rethrow_if_failed() const {
    if (state_ && state_->error) std::rethrow_exception(state_->error);
  }

  [[nodiscard]] bool failed() const {
    return state_ && state_->error != nullptr;
  }

  /// Awaitable that suspends the caller until this process completes.
  /// Propagates the process's exception to the joiner.
  auto join() {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> state;
      bool await_ready() const { return state->done; }
      void await_suspend(std::coroutine_handle<> h) {
        state->joiners.push_back(h);
      }
      void await_resume() const {
        if (state->error) std::rethrow_exception(state->error);
      }
    };
    OPTSYNC_EXPECT(state_ != nullptr);
    return Awaiter{state_};
  }

 private:
  explicit Process(std::shared_ptr<detail::ProcessState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

/// Awaitable that resumes the coroutine after `d` simulated nanoseconds.
inline auto delay(Scheduler& sched, Duration d) {
  struct Awaiter {
    Scheduler& sched;
    Duration d;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sched.after(d, [h] { h.resume(); });
    }
    void await_resume() const {}
  };
  return Awaiter{sched, d};
}

/// Broadcast wake-up point for coroutines (a condition variable analog).
///
/// notify_all() resumes every current waiter *via scheduler events at the
/// current time*, never inline, so a notifier's own state updates complete
/// before any waiter observes them and wake order is deterministic.
class Signal {
 public:
  explicit Signal(Scheduler& sched) : sched_(&sched) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Awaitable: suspends until the next notify_all().
  auto wait() {
    struct Awaiter {
      Signal& sig;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sig.waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

  /// Wakes all coroutines currently waiting. Waiters that arrive during the
  /// notification are not woken (standard condvar semantics).
  void notify_all() {
    if (waiters_.empty()) return;
    auto batch = std::move(waiters_);
    waiters_.clear();
    for (auto h : batch) {
      sched_->after(0, [h] { h.resume(); });
    }
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Scheduler* sched_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// NOTE: "wait until predicate" is written at call sites as the standard
// condition-variable idiom, which works verbatim with Signal:
//
//   while (!pred()) co_await sig.wait();

}  // namespace optsync::sim
