#include "simkern/log.hpp"

#include <cstdio>

#include "simkern/scheduler.hpp"

namespace optsync::sim {

void Logger::log(LogLevel lvl, std::string_view msg) {
  if (!enabled(lvl)) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::string line;
  if (clock_ != nullptr) {
    line += "[" + format_time(clock_->now()) + "] ";
  }
  line += kNames[static_cast<int>(lvl)];
  line += " ";
  line += msg;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

}  // namespace optsync::sim
