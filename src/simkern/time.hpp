// Simulated-time types for the discrete-event kernel.
//
// All simulated durations are integral nanoseconds. The paper's cost model
// (200 ns per mesh hop, 1 Gbit/s links, 33 MFLOPS CPUs) is expressed exactly
// in these units, so every figure bench is integer-deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace optsync::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using Time = std::uint64_t;

/// A span of simulated time in nanoseconds.
using Duration = std::uint64_t;

/// Sentinel meaning "never" / "no deadline".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return v; }
constexpr Duration operator""_us(unsigned long long v) { return v * 1'000ull; }
constexpr Duration operator""_ms(unsigned long long v) {
  return v * 1'000'000ull;
}
constexpr Duration operator""_s(unsigned long long v) {
  return v * 1'000'000'000ull;
}
}  // namespace literals

/// Renders a time as a human-readable string with an adaptive unit,
/// e.g. 1234 -> "1.234us", 5000000 -> "5.000ms".
inline std::string format_time(Time t) {
  char buf[48];
  if (t < 1'000ull) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(t));
  } else if (t < 1'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(t) / 1e3);
  } else if (t < 1'000'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(t) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(t) / 1e9);
  }
  return buf;
}

/// Converts a simulated time to (floating) seconds; used by the stats layer
/// when computing rates such as tasks/second or MFLOPS sustained.
inline double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

}  // namespace optsync::sim
