// Deterministic pseudo-random number generation for simulations.
//
// std::mt19937 results are standardized but its seeding via seed_seq is easy
// to misuse; this small xoshiro256** implementation is fast, has a trivial
// splitmix64 seeding path, and guarantees identical streams on every
// platform, which the determinism tests rely on.
#pragma once

#include <cstdint>
#include <utility>

namespace optsync::sim {

/// splitmix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed0f0d5eed0f0dull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle.
  template <class It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace optsync::sim
