#include "simkern/random.hpp"

#include <cmath>

#include "simkern/assert.hpp"

namespace optsync::sim {

std::uint64_t Rng::below(std::uint64_t bound) {
  OPTSYNC_EXPECT(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  OPTSYNC_EXPECT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double mean) {
  OPTSYNC_EXPECT(mean > 0.0);
  // Avoid log(0) by nudging u away from zero.
  const double u = 1.0 - uniform01();
  return -mean * std::log(u);
}

}  // namespace optsync::sim
