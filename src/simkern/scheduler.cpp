#include "simkern/scheduler.hpp"

#include "simkern/assert.hpp"

namespace optsync::sim {

EventId Scheduler::at(Time when, Callback cb) {
  OPTSYNC_EXPECT(when >= now_);
  return queue_.push(when, std::move(cb));
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  auto [time, id, callback] = queue_.pop();
  now_ = time;
  ++processed_;
  if (dispatch_) dispatch_(time, id);
  callback();
  return true;
}

std::uint64_t Scheduler::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    const Time next = queue_.next_time();
    if (next == kNever) break;
    if (next > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace optsync::sim
