#include "simkern/event_queue.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::sim {

EventId EventQueue::push(Time when, Callback cb) {
  OPTSYNC_EXPECT(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // The live set is authoritative: an id is present iff it was pushed, has
  // not fired, and has not been cancelled. O(1) — the reliable channel
  // cancels one retransmit timer per acked packet, so this must not scan.
  const auto it = live_ids_.find(id);
  if (it == live_ids_.end()) return false;
  live_ids_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  if (live_ids_.empty()) return kNever;
  drop_cancelled_top();
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_top();
  OPTSYNC_EXPECT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  live_ids_.erase(e.id);
  return Popped{e.time, e.id, std::move(e.callback)};
}

void EventQueue::clear() {
  heap_.clear();
  live_ids_.clear();
  cancelled_.clear();
}

}  // namespace optsync::sim
