#include "simkern/event_queue.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::sim {

EventId EventQueue::push(Time when, Callback cb) {
  OPTSYNC_EXPECT(cb != nullptr);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  heap_.push_back(Entry{when, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(slot, s.gen);
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  if (++s.gen == 0) s.gen = 1;  // ids are never 0; see EventId docs
  free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffull);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (gen == 0 || slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // already fired, already cancelled, or never existed
  }
  // O(1): drop the callback and invalidate the slot now; the heap entry
  // becomes dead and is reclaimed lazily (top drop or compaction).
  free_slot(slot);
  --live_;
  ++dead_in_heap_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  // Compact when dead entries dominate: bounds heap memory at ~2x the live
  // count under arm/cancel storms while keeping the amortized cost O(1)
  // per cancel (each compaction halves the heap, paid for by the cancels
  // that created the dead entries).
  if (dead_in_heap_ < 64 || dead_in_heap_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  // Bottom-up heapify: O(n), and n just halved.
  for (std::size_t i = heap_.size() / kArity + 1; i-- > 0;) sift_down(i);
  dead_in_heap_ = 0;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    --dead_in_heap_;
  }
}

Time EventQueue::next_time() {
  if (live_ == 0) return kNever;
  drop_dead_top();
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  OPTSYNC_EXPECT(live_ > 0);
  drop_dead_top();
  const Entry e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  Popped out{e.time, make_id(e.slot, e.gen), std::move(slots_[e.slot].cb)};
  free_slot(e.slot);
  --live_;
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  free_slots_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    s.cb = nullptr;
    if (++s.gen == 0) s.gen = 1;
    free_slots_.push_back(i);
  }
  live_ = 0;
  dead_in_heap_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace optsync::sim
