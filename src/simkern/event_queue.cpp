#include "simkern/event_queue.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::sim {

EventId EventQueue::push(Time when, Callback cb) {
  OPTSYNC_EXPECT(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (cancelled_.contains(id)) return false;
  // An id is live iff it is still somewhere in the heap; fired events were
  // removed, so probing the heap is the only authoritative check. Scanning is
  // O(n) but cancellation is rare (only interrupt disarm paths use it).
  const bool pending = std::any_of(heap_.begin(), heap_.end(),
                                   [id](const Entry& e) { return e.id == id; });
  if (!pending) return false;
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  if (live_ == 0) return kNever;
  drop_cancelled_top();
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_top();
  OPTSYNC_EXPECT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  return Popped{e.time, e.id, std::move(e.callback)};
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_ = 0;
}

}  // namespace optsync::sim
