// Typed FIFO channel for coroutine processes.
//
// The message-passing companion to Signal: producers push values, consumer
// coroutines co_await pop(). Used by protocol code that wants explicit
// queues (and by library users building their own engines on simkern).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "simkern/assert.hpp"
#include "simkern/coro.hpp"

namespace optsync::sim {

template <class T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : signal_(sched) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues an item and wakes waiting consumers.
  /// Precondition: the channel is not closed.
  void push(T item) {
    OPTSYNC_EXPECT(!closed_);
    items_.push_back(std::move(item));
    signal_.notify_all();
  }

  /// Closes the channel: pending items still drain; pop() then yields
  /// nullopt. Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    signal_.notify_all();
  }

  /// Awaits the next item; nullopt when the channel closed and drained.
  /// Multiple concurrent consumers race fairly (wake order is FIFO).
  sim::Process pop_into(std::optional<T>* out) {
    OPTSYNC_EXPECT(out != nullptr);
    while (items_.empty() && !closed_) {
      co_await signal_.wait();
    }
    if (items_.empty()) {
      *out = std::nullopt;
      co_return;
    }
    *out = std::move(items_.front());
    items_.pop_front();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  Signal signal_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace optsync::sim
