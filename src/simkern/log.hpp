// Minimal leveled logger with simulated-time prefixes.
//
// Benches use Level::kInfo for trace output (Fig. 7 message traces); the
// test suite keeps the logger at kWarn so thousands of simulations stay
// silent. Not thread-safe by design — only the simulated (single-threaded)
// substrate logs through it; the threaded runtime reports via its own stats.
#pragma once

#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "simkern/time.hpp"

namespace optsync::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Scheduler;

/// Per-simulation logger. Owns no stream; writes through a sink callback so
/// tests can capture output and benches can tee to files.
class Logger {
 public:
  using Sink = std::function<void(std::string_view line)>;

  Logger() = default;

  void set_level(LogLevel lvl) { level_ = lvl; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replaces the sink. Default sink writes to stderr.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Attaches a scheduler so lines carry simulated timestamps.
  void attach_clock(const Scheduler* sched) { clock_ = sched; }

  [[nodiscard]] bool enabled(LogLevel lvl) const { return lvl >= level_; }

  void log(LogLevel lvl, std::string_view msg);

  /// Global logger used by the simulated substrate.
  static Logger& global();

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  const Scheduler* clock_ = nullptr;
};

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <class... Args>
void log_trace(Args&&... args) {
  auto& lg = Logger::global();
  if (lg.enabled(LogLevel::kTrace))
    lg.log(LogLevel::kTrace, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_debug(Args&&... args) {
  auto& lg = Logger::global();
  if (lg.enabled(LogLevel::kDebug))
    lg.log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_info(Args&&... args) {
  auto& lg = Logger::global();
  if (lg.enabled(LogLevel::kInfo))
    lg.log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_warn(Args&&... args) {
  auto& lg = Logger::global();
  if (lg.enabled(LogLevel::kWarn))
    lg.log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

}  // namespace optsync::sim
