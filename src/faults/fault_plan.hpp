// Deterministic, seeded fault schedules for the simulated network.
//
// The paper hand-waves reliability — "the spanning tree protocol handles
// retransmission in hardware" — so the seed modelled the fiber as loss-free.
// A FaultPlan makes the failure paths explicit and attackable: it describes,
// as data, which messages to drop, duplicate, or delay (per tag/src/dst
// predicate), which nodes pause, and which links partition, all driven by a
// sim::Rng so a (plan, seed) pair replays bit-for-bit. The plan is pure
// description + generator state; faults::FaultInjector wires it into
// net::Network, and net::ReliableChannel is the layer whose job is to
// survive it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "simkern/random.hpp"
#include "simkern/time.hpp"

namespace optsync::faults {

/// Wildcard node id for rule predicates.
inline constexpr net::NodeId kAnyNode = static_cast<net::NodeId>(-1);

/// One message-level fault rule. A message matches when its tag starts with
/// `tag_prefix` (empty prefix = every tag) and src/dst equal the rule's
/// (kAnyNode = any). Matching draws against each probability independently,
/// so one rule can both drop and delay. Retransmissions are matched like
/// fresh sends — repeated loss of the same packet is exactly the case the
/// reliability layer's backoff must handle.
struct MessageFaultRule {
  std::string tag_prefix;  ///< "" matches any tag; "lock" matches lock-up/-down
  net::NodeId src = kAnyNode;
  net::NodeId dst = kAnyNode;
  double drop_p = 0.0;   ///< message destroyed in flight
  double dup_p = 0.0;    ///< one extra copy delivered
  double delay_p = 0.0;  ///< extra uniform [0, delay_jitter_ns) latency
  sim::Duration delay_jitter_ns = 0;
};

/// Node `node` stops receiving and transmitting during [from, until):
/// messages touching it are held and complete after the window. Models a
/// GC-style stall or an OS descheduling the sharing interface's host.
struct PauseWindow {
  net::NodeId node;
  sim::Time from;
  sim::Time until;
};

/// The (a, b) link — a tree edge or routed virtual link, matched by message
/// endpoints in either direction — goes dark during [from, until): every
/// message sent across it in the window is destroyed.
struct PartitionWindow {
  net::NodeId a;
  net::NodeId b;
  sim::Time from;
  sim::Time until;
};

/// A seeded, deterministic fault schedule. Value-semantic: copying a plan
/// copies the generator state, so a DsmConfig carrying a plan replays the
/// identical schedule on every run.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Resets the generator; decisions replay from the start.
  void reseed(std::uint64_t seed) {
    seed_ = seed;
    rng_.reseed(seed);
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // --- schedule construction (fluent, so configs read as one expression) --
  FaultPlan& add_rule(MessageFaultRule rule);

  /// Shorthand: drop matching messages with probability `p`.
  FaultPlan& drop(double p, std::string tag_prefix = "",
                  net::NodeId src = kAnyNode, net::NodeId dst = kAnyNode);

  /// Shorthand: duplicate matching messages with probability `p`.
  FaultPlan& duplicate(double p, std::string tag_prefix = "");

  /// Shorthand: delay matching messages with probability `p` by an extra
  /// uniform [0, jitter_ns). Per-message draws break per-pair FIFO — the
  /// reorder-within-jitter fault.
  FaultPlan& delay(double p, sim::Duration jitter_ns,
                   std::string tag_prefix = "");

  FaultPlan& pause_node(net::NodeId node, sim::Time from, sim::Time until);
  FaultPlan& partition_link(net::NodeId a, net::NodeId b, sim::Time from,
                            sim::Time until);

  [[nodiscard]] bool empty() const {
    return rules_.empty() && pauses_.empty() && partitions_.empty();
  }
  [[nodiscard]] const std::vector<MessageFaultRule>& rules() const {
    return rules_;
  }
  [[nodiscard]] const std::vector<PauseWindow>& pauses() const {
    return pauses_;
  }
  [[nodiscard]] const std::vector<PartitionWindow>& partitions() const {
    return partitions_;
  }

  /// Decides the fate of one message. Mutates generator state: calling
  /// sequence determines the draws, which the deterministic scheduler makes
  /// reproducible. Loopback (src == dst) is never faulted — the sharing
  /// interface's self-delivery does not cross the fiber.
  net::FaultAction decide(const net::MessageMeta& m);

 private:
  [[nodiscard]] static bool matches(const MessageFaultRule& r,
                                    const net::MessageMeta& m);

  std::uint64_t seed_ = 0;
  sim::Rng rng_{0};
  std::vector<MessageFaultRule> rules_;
  std::vector<PauseWindow> pauses_;
  std::vector<PartitionWindow> partitions_;
};

}  // namespace optsync::faults
