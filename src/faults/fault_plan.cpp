#include "faults/fault_plan.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::faults {

FaultPlan& FaultPlan::add_rule(MessageFaultRule rule) {
  OPTSYNC_EXPECT(rule.drop_p >= 0.0 && rule.drop_p <= 1.0);
  OPTSYNC_EXPECT(rule.dup_p >= 0.0 && rule.dup_p <= 1.0);
  OPTSYNC_EXPECT(rule.delay_p >= 0.0 && rule.delay_p <= 1.0);
  OPTSYNC_EXPECT(rule.delay_p == 0.0 || rule.delay_jitter_ns > 0);
  rules_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::drop(double p, std::string tag_prefix, net::NodeId src,
                           net::NodeId dst) {
  MessageFaultRule r;
  r.tag_prefix = std::move(tag_prefix);
  r.src = src;
  r.dst = dst;
  r.drop_p = p;
  return add_rule(std::move(r));
}

FaultPlan& FaultPlan::duplicate(double p, std::string tag_prefix) {
  MessageFaultRule r;
  r.tag_prefix = std::move(tag_prefix);
  r.dup_p = p;
  return add_rule(std::move(r));
}

FaultPlan& FaultPlan::delay(double p, sim::Duration jitter_ns,
                            std::string tag_prefix) {
  MessageFaultRule r;
  r.tag_prefix = std::move(tag_prefix);
  r.delay_p = p;
  r.delay_jitter_ns = jitter_ns;
  return add_rule(std::move(r));
}

FaultPlan& FaultPlan::pause_node(net::NodeId node, sim::Time from,
                                 sim::Time until) {
  OPTSYNC_EXPECT(from < until);
  pauses_.push_back(PauseWindow{node, from, until});
  return *this;
}

FaultPlan& FaultPlan::partition_link(net::NodeId a, net::NodeId b,
                                     sim::Time from, sim::Time until) {
  OPTSYNC_EXPECT(from < until);
  OPTSYNC_EXPECT(a != b);
  partitions_.push_back(PartitionWindow{a, b, from, until});
  return *this;
}

bool FaultPlan::matches(const MessageFaultRule& r, const net::MessageMeta& m) {
  if (r.src != kAnyNode && r.src != m.src) return false;
  if (r.dst != kAnyNode && r.dst != m.dst) return false;
  return m.tag.substr(0, r.tag_prefix.size()) == r.tag_prefix;
}

net::FaultAction FaultPlan::decide(const net::MessageMeta& m) {
  net::FaultAction act;
  if (m.src == m.dst) return act;  // loopback never crosses the fiber

  // Partitions are absolute: the link is physically dark, no draw needed.
  for (const auto& pw : partitions_) {
    const bool on_link = (pw.a == m.src && pw.b == m.dst) ||
                         (pw.a == m.dst && pw.b == m.src);
    if (on_link && m.sent_at >= pw.from && m.sent_at < pw.until) {
      act.drop = true;
      return act;
    }
  }

  for (const auto& rule : rules_) {
    if (!matches(rule, m)) continue;
    if (rule.drop_p > 0 && rng_.chance(rule.drop_p)) {
      act.drop = true;
      return act;  // destroyed; later rules can't resurrect it
    }
    if (rule.dup_p > 0 && rng_.chance(rule.dup_p)) {
      act.duplicates += 1;
      act.dup_extra_delay += rng_.below(std::max<sim::Duration>(
          rule.delay_jitter_ns, m.base_delay + 1));
    }
    if (rule.delay_p > 0 && rng_.chance(rule.delay_p)) {
      act.extra_delay += rng_.below(rule.delay_jitter_ns);
    }
  }

  // Pauses hold traffic touching the node: a message sent while the source
  // is paused leaves at window end; one arriving while the destination is
  // paused sits in its interface until the window ends.
  for (const auto& pw : pauses_) {
    if (pw.node == m.src && m.sent_at >= pw.from && m.sent_at < pw.until) {
      act.extra_delay += pw.until - m.sent_at;
    }
    const sim::Time arrival = m.sent_at + m.base_delay + act.extra_delay;
    if (pw.node == m.dst && arrival >= pw.from && arrival < pw.until) {
      act.extra_delay += pw.until - arrival;
    }
  }
  return act;
}

}  // namespace optsync::faults
