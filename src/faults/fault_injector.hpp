// FaultInjector: hooks a FaultPlan into a net::Network.
//
// Installation is transparent to every caller of Network::send /
// send_hops — the hook runs inside the network's send path, so protocol
// code is attacked without being modified. RAII: destroying the injector
// (or the owning DsmSystem) uninstalls the hook.
#pragma once

#include "faults/fault_plan.hpp"
#include "net/network.hpp"

namespace optsync::faults {

class FaultInjector {
 public:
  /// Takes the plan by value: the injector owns the replaying generator.
  FaultInjector(net::Network& net, FaultPlan plan)
      : net_(&net), plan_(std::move(plan)) {
    net_->set_fault_hook(
        [this](const net::MessageMeta& m) { return plan_.decide(m); });
  }

  ~FaultInjector() { net_->set_fault_hook(nullptr); }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] FaultPlan& plan() { return plan_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  net::Network* net_;
  FaultPlan plan_;
};

}  // namespace optsync::faults
