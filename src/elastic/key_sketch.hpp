// Space-saving top-k sketch over one shard's key accesses.
//
// The elastic controller needs "which single keys dominate this shard's
// traffic" without per-key state: a shard serves an unbounded key
// population, but only a handful of keys can matter for promotion. The
// classic space-saving summary fits: `capacity` (key, count) entries,
// linear-scanned (capacity is ~8; a scan beats hashing at that size). A
// recorded key already present bumps its count; a new key evicts the
// current minimum and inherits its count + 1 — so a genuinely hot key's
// count is overestimated by at most the evicted minimum, never missed.
//
// decay() halves every count (dropping zeros) and the running total, so
// share() answers over a sliding exponential window rather than the whole
// run — a key that WAS hot stops looking hot within a few control ticks,
// which is what demotion hysteresis keys off.
#pragma once

#include <cstdint>
#include <vector>

#include "shard/shard_map.hpp"

namespace optsync::elastic {

class KeySketch {
 public:
  explicit KeySketch(std::size_t capacity = 8);

  void record(shard::Key key);

  /// Halves every count and the total; zero entries are dropped.
  void decay();

  struct Entry {
    shard::Key key = 0;
    std::uint64_t count = 0;
  };

  /// Entries sorted by descending count.
  [[nodiscard]] std::vector<Entry> top() const;

  /// The sketch's count for `key` (0 when not tracked).
  [[nodiscard]] std::uint64_t count(shard::Key key) const;

  /// `key`'s share of all accesses recorded in the current window
  /// (count / total; 0 on an empty window).
  [[nodiscard]] double share(shard::Key key) const;

  /// Accesses recorded since construction, minus decay halvings.
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::size_t cap_;
  std::vector<Entry> entries_;
  std::uint64_t total_ = 0;
};

}  // namespace optsync::elastic
