#include "elastic/migrator.hpp"

#include <algorithm>

#include "dsm/root.hpp"
#include "dsm/system.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/assert.hpp"

namespace optsync::elastic {

RootMigrator::RootMigrator(shard::ShardedStore& store, RootMigratorConfig cfg)
    : store_(&store), cfg_(cfg) {}

sim::Process RootMigrator::migrate(shard::ShardId s, dsm::NodeId to) {
  shard::ShardedStore& store = *store_;
  dsm::DsmSystem& sys = store.system();
  auto& sched = sys.scheduler();
  OPTSYNC_EXPECT(s < store.shards());
  OPTSYNC_EXPECT(!in_flight_);
  const dsm::GroupId g = store.group_of(s);
  const auto& members = sys.group(g).members();
  OPTSYNC_EXPECT(std::find(members.begin(), members.end(), to) !=
                 members.end());
  const dsm::NodeId from = store.root_of(s);
  if (from == to) co_return;

  in_flight_ = true;
  dsm::GroupRoot& root = sys.root_of(g);

  // 1. Quiesce: last old-flow frame on the wire, arrivals start parking.
  root.begin_quiesce();
  const sim::Time cut = sched.now();

  // 2. Drain until the old flow has cleared, plus grace.
  const sim::Time clear = sys.group_clear_at(g);
  if (clear > sched.now()) {
    co_await sim::delay(sched, clear - sched.now());
  }
  if (cfg_.drain_grace_ns > 0) {
    co_await sim::delay(sched, cfg_.drain_grace_ns);
  }

  // 3. Transfer the sequencer state the successor must own.
  const auto bytes = static_cast<std::uint32_t>(
      cfg_.ctrl_bytes +
      cfg_.per_waiter_bytes *
          static_cast<std::uint32_t>(root.waiter_queue_depth()) +
      cfg_.per_slot_bytes * store.config().slots_per_shard);
  bool delivered = false;
  sim::Signal sig(sched);
  sys.send_direct(from, to, bytes, "mig-state", [&delivered, &sig] {
    delivered = true;
    sig.notify_all();
  });
  while (!delivered) co_await sig.wait();

  // 4. Re-root topology + service routing.
  store.apply_root_move(s, to);

  // 5. Replay the raced writes; sequencing continues without a gap.
  const std::size_t logged = root.handoff_log_size();
  root.end_quiesce();

  ++stats_.migrations;
  stats_.handoff_replayed += logged;
  stats_.max_handoff_log = std::max(stats_.max_handoff_log, logged);
  stats_.total_quiesce_ns += sched.now() - cut;
  in_flight_ = false;
}

}  // namespace optsync::elastic
