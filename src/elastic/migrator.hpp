// Online root migration: hand one shard's sequencer role to another group
// member without dropping GWC order.
//
// The root is a per-group OBJECT (dsm::GroupRoot), not a node: sequencing
// state — next_seq_, the lock table, waiter queues, the open coalesce
// frame — lives with the group and survives a change of which node plays
// root. What a migration must actually move is (a) the spanning tree's
// orientation (frames flow down from the new root's position) and (b) the
// service layer's routing (shard root field, lease directory). The
// protocol:
//
//   1. quiesce   — GroupRoot::begin_quiesce(): flush the open frame, then
//                  park every arriving write (lock words included) in a
//                  bounded handoff log. next_seq_ freezes at the cut.
//   2. drain     — wait until the outgoing root's multicast frames have
//                  cleared the wire (DsmSystem::group_clear_at) plus a
//                  grace period. The per-member delivery gate in DsmNode
//                  would re-order-buffer stragglers anyway; draining keeps
//                  the cross-flow window — and the replay burst — small.
//   3. transfer  — one state-transfer message old-root -> new-root, sized
//                  by what the successor must own: waiter queues, the
//                  version-ledger cursor, per-slot lease/orec state.
//   4. re-root   — ShardedStore::apply_root_move(): Group::reroot()
//                  rebuilds parent links and hop-depth classes in place,
//                  the shard's root field and the lease directory follow.
//   5. replay    — GroupRoot::end_quiesce(): the handoff log replays
//                  through on_arrival() in original arrival order, so
//                  writes that raced the cut are sequenced by the new
//                  root with no gap and no reorder.
//
// GwcChecker and StaleReadAuditor see one uninterrupted sequenced stream
// across the cut: sequence numbers continue from where the old root
// stopped, and lease epochs are root-location independent.
#pragma once

#include <cstdint>

#include "dsm/types.hpp"
#include "shard/shard_map.hpp"
#include "simkern/coro.hpp"
#include "simkern/time.hpp"

namespace optsync::shard {
class ShardedStore;
}

namespace optsync::elastic {

struct RootMigratorConfig {
  /// Extra wait after the group's wire-clear instant before the state
  /// transfer — headroom for per-member fan-out under the faulted path.
  sim::Duration drain_grace_ns = 2'000;
  /// State-transfer message sizing: fixed header plus per-waiter and
  /// per-slot charges (waiter queue, version ledger, lease directory).
  std::uint32_t ctrl_bytes = 64;
  std::uint32_t per_waiter_bytes = 16;
  std::uint32_t per_slot_bytes = 16;
};

class RootMigrator {
 public:
  explicit RootMigrator(shard::ShardedStore& store,
                        RootMigratorConfig cfg = {});

  RootMigrator(const RootMigrator&) = delete;
  RootMigrator& operator=(const RootMigrator&) = delete;

  /// Migrates shard `s`'s root to member node `to`. No-op if `to` already
  /// is the root. At most one migration may be in flight per migrator.
  sim::Process migrate(shard::ShardId s, dsm::NodeId to);

  struct Stats {
    std::uint64_t migrations = 0;
    std::uint64_t handoff_replayed = 0;  ///< writes that raced the cut
    std::size_t max_handoff_log = 0;
    sim::Duration total_quiesce_ns = 0;  ///< summed cut-to-replay windows
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool in_flight() const { return in_flight_; }

 private:
  shard::ShardedStore* store_;
  RootMigratorConfig cfg_;
  Stats stats_;
  bool in_flight_ = false;
};

}  // namespace optsync::elastic
