#include "elastic/controller.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "dsm/system.hpp"
#include "shard/sharded_store.hpp"
#include "simkern/assert.hpp"
#include "telemetry/journal.hpp"

namespace optsync::elastic {

using shard::Key;
using shard::ShardId;
using shard::ShardMap;

ElasticController::ElasticController(shard::ShardedStore& store,
                                     const stats::ServiceReport& live,
                                     const telemetry::SeriesSet& series,
                                     ElasticControllerConfig cfg)
    : store_(&store),
      live_(&live),
      series_(&series),
      cfg_(cfg),
      migrator_(store),
      dir_(store) {
  OPTSYNC_EXPECT(store.elastic());
  if (cfg_.interval_ns <= 0) cfg_.interval_ns = 100'000;
  sketches_.assign(store.shards(), KeySketch(cfg_.sketch_capacity));
  streak_.assign(store.base_shards(), 0);
  verdict_.assign(store.base_shards(), telemetry::OverloadVerdict{});
}

void ElasticController::start() {
  store_->set_access_observer([this](ShardId s, Key k) {
    if (s < sketches_.size()) sketches_[s].record(k);
  });
  pending_ = store_->system().scheduler().after_housekeeping(
      cfg_.interval_ns, [this] { tick(); });
}

void ElasticController::stop() {
  if (pending_ != 0) {
    store_->system().scheduler().cancel_housekeeping(pending_);
    pending_ = 0;
  }
}

void ElasticController::register_telemetry(telemetry::Sampler& sampler) {
  sampler.set_help("optsync_hot_key_share",
                   "Traffic share of the hottest key in the shard's sketch");
  sampler.set_help("optsync_dir_epoch",
                   "Directory epoch (bumps on every elastic reconfiguration)");
  for (ShardId s = 0; s < store_->base_shards(); ++s) {
    sampler.add_gauge("optsync_hot_key_share",
                      {{"shard", std::to_string(s)}}, [this, s] {
                        const auto top = sketches_[s].top();
                        return top.empty()
                                   ? 0.0
                                   : sketches_[s].share(top.front().key);
                      });
  }
  sampler.add_gauge("optsync_dir_epoch", {}, [this] {
    return static_cast<double>(store_->dir_epoch());
  });
}

double ElasticController::backlog(ShardId s) const {
  if (s >= live_->shards.size()) return 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  for (const auto& o : live_->shards[s].ops) {
    issued += o.issued;
    completed += o.completed;
  }
  return static_cast<double>(issued) - static_cast<double>(completed);
}

ShardId ElasticController::pick_hot_group() const {
  const ShardId base = store_->base_shards();
  const ShardId total = store_->shards();
  ShardId best = total;
  std::uint32_t best_pins = cfg_.max_pins_per_hot;
  for (ShardId h = base; h < total; ++h) {
    std::uint32_t pins = 0;
    for (const auto& p : dir_.pins()) {
      if (p.hot == h) ++pins;
    }
    if (pins < best_pins) {
      best_pins = pins;
      best = h;
    }
  }
  return best;
}

ShardId ElasticController::pick_split_target(ShardId s) const {
  const ShardId base = store_->base_shards();
  ShardId best = base;
  double best_b = std::numeric_limits<double>::infinity();
  for (ShardId d = 0; d < base; ++d) {
    if (d == s || streak_[d] != 0) continue;
    const double b = backlog(d);
    if (b < best_b) {
      best_b = b;
      best = d;
    }
  }
  return best;
}

dsm::NodeId ElasticController::pick_migration_target(ShardId s) const {
  auto& sys = store_->system();
  const auto& members = sys.group(store_->group_of(s)).members();
  std::vector<std::uint32_t> roots(sys.node_count(), 0);
  for (ShardId t = 0; t < store_->shards(); ++t) {
    ++roots[store_->root_of(t)];
  }
  const dsm::NodeId cur = store_->root_of(s);
  dsm::NodeId best = dsm::kNoNode;
  // The move must strictly reduce the hottest involved node's root count:
  // after it, the target hosts roots[m] + 1 — require that to still be
  // below the current node's load.
  std::uint32_t best_load = roots[cur];
  for (const dsm::NodeId m : members) {
    if (m == cur || m == store_->control_node()) continue;
    if (roots[m] + 1 < best_load) {
      best_load = roots[m] + 1;
      best = m;
    }
  }
  return best;
}

sim::Process ElasticController::run_action(
    std::function<sim::Process()> thunk) {
  action_busy_ = true;
  co_await thunk().join();
  action_busy_ = false;
}

sim::Process ElasticController::swap_pin(Key victim, Key cand) {
  co_await dir_.demote(victim).join();
  // Re-pick AFTER the demote: that is the slot the eviction freed.
  const ShardId hot = pick_hot_group();
  if (hot < store_->shards()) {
    co_await dir_.promote(cand, hot).join();
  }
}

void ElasticController::launch(std::function<sim::Process()> thunk) {
  ++actions_;
  cooldown_ = cfg_.cooldown_ticks;
  (void)run_action(std::move(thunk));
}

void ElasticController::journal_step(const char* step, ShardId s,
                                     std::uint32_t target,
                                     std::uint32_t streak) {
  auto* j = store_->system().journal();
  if (j == nullptr) return;
  const telemetry::OverloadVerdict v =
      s < verdict_.size() ? verdict_[s] : telemetry::OverloadVerdict{};
  std::uint64_t top_key = 0;
  double top_share = 0.0;
  if (s < sketches_.size()) {
    const auto top = sketches_[s].top();
    if (!top.empty()) {
      top_key = top.front().key;
      top_share = sketches_[s].share(top.front().key);
    }
  }
  j->elastic_decision(store_->system().scheduler().now(), step, s, target,
                      v.slope_per_s, v.peak_backlog, backlog(s), top_key,
                      top_share, streak, cooldown_);
}

void ElasticController::act_on(ShardId s) {
  // 1. A dominant single key: route it to a dedicated one-stripe group.
  const auto top = sketches_[s].top();
  if (!top.empty() &&
      sketches_[s].share(top.front().key) >= cfg_.hot_key_share) {
    const ShardId hot = pick_hot_group();
    if (hot < store_->shards()) {
      const Key key = top.front().key;
      journal_step("promote", s, hot, streak_[s]);
      streak_[s] = 0;
      pin_cold_[key] = 0;
      launch([this, key, hot] { return dir_.promote(key, hot); });
      return;
    }
    // Hot groups full. After a hotspot shift the slots are held by the
    // OLD head — evict the coldest pin, but only when the candidate sees
    // at least 3x its traffic: near the decayed sketch's noise floor
    // tail ranks reorder every window, and without the margin the loop
    // thrashes pins between keys of indistinguishable heat.
    const std::uint64_t cand = sketches_[s].count(top.front().key);
    Key victim = 0;
    std::uint64_t victim_count = cand / 3;
    for (const auto& p : dir_.pins()) {
      const std::uint64_t c = sketches_[p.hot].count(p.key);
      if (c < victim_count) {
        victim_count = c;
        victim = p.key;
      }
    }
    if (victim != 0) {
      const Key cand_key = top.front().key;
      journal_step("swap_pin", s, /*target=*/0, streak_[s]);
      streak_[s] = 0;
      pin_cold_.erase(victim);
      pin_cold_[cand_key] = 0;
      launch([this, victim, cand_key] { return swap_pin(victim, cand_key); });
      return;
    }
  }
  // 2. Diffuse range pressure: donate the upper half of the stripe.
  if (store_->map().policy() == ShardMap::Policy::kRange) {
    const ShardId dst = pick_split_target(s);
    if (dst < store_->base_shards()) {
      journal_step("split", s, dst, streak_[s]);
      streak_[s] = 0;
      launch([this, s, dst] { return dir_.split(s, dst); });
      return;
    }
  }
  // 3. Sequencer-node pressure: move the root to a less loaded member.
  if (cfg_.migrate_roots) {
    const dsm::NodeId to = pick_migration_target(s);
    if (to != dsm::kNoNode) {
      journal_step("migrate", s, to, streak_[s]);
      streak_[s] = 0;
      launch([this, s, to] { return migrator_.migrate(s, to); });
      return;
    }
  }
}

void ElasticController::maybe_relax() {
  // Demote pins whose keys went cold for cold_ticks consecutive windows.
  for (const auto& pin : dir_.pins()) {
    const std::uint64_t seen = sketches_[pin.hot].count(pin.key);
    std::uint32_t& cold = pin_cold_[pin.key];
    cold = seen < cfg_.min_hot_accesses ? cold + 1 : 0;
    if (cold >= cfg_.cold_ticks) {
      const Key key = pin.key;
      journal_step("demote", pin.hot, /*target=*/0, cold);
      pin_cold_.erase(key);
      launch([this, key] { return dir_.demote(key); });
      return;
    }
  }
  // Merge donations back once BOTH ends are demonstrably cold.
  for (const auto& d : dir_.donations()) {
    const bool src_cold =
        streak_[d.src] == 0 && backlog(d.src) <= cfg_.merge_backlog_max;
    const bool dst_cold =
        (d.dst >= streak_.size() || streak_[d.dst] == 0) &&
        backlog(d.dst) <= cfg_.merge_backlog_max;
    if (src_cold && dst_cold) {
      const ShardId src = d.src;
      journal_step("merge", src, d.dst, streak_[src]);
      launch([this, src] { return dir_.merge_back(src); });
      return;
    }
  }
}

void ElasticController::tick() {
  pending_ = 0;
  ++ticks_;
  const ShardId base = store_->base_shards();
  for (ShardId s = 0; s < base; ++s) {
    const telemetry::Series* ser = series_->find(
        "optsync_shard_backlog", {{"shard", std::to_string(s)}});
    verdict_[s] = ser != nullptr
                      ? telemetry::assess_backlog(*ser, cfg_.overload)
                      : telemetry::OverloadVerdict{};
    // Live recovery overlay (telemetry::live_drowning): assess_backlog
    // pins its fit window to the series PEAK (the right call for
    // end-of-run verdicts, where the final drain would mask a
    // structurally-behind shard), so mid-run it never un-flags a shard
    // whose hotspot moved away. A shard whose queue is no longer material
    // is not drowning NOW, whatever its history says.
    const bool drowning =
        telemetry::live_drowning(verdict_[s], backlog(s), cfg_.overload);
    streak_[s] = drowning ? streak_[s] + 1 : 0;
  }
  if (cooldown_ > 0) {
    --cooldown_;
  } else if (!action_busy_ && !migrator_.in_flight()) {
    // Among streak-qualified shards, act on the deepest CURRENT queue —
    // after a hotspot shift the newly hot shard outranks one still
    // working off an old backlog, even though the latter has the longer
    // streak.
    ShardId worst = base;
    double worst_backlog = -1.0;
    for (ShardId s = 0; s < base; ++s) {
      if (streak_[s] < cfg_.drowning_ticks) continue;
      const double b = backlog(s);
      if (b > worst_backlog) {
        worst = s;
        worst_backlog = b;
      }
    }
    if (worst < base) {
      act_on(worst);
    } else {
      maybe_relax();
    }
  }
  // Slide the access window: shares answer "hot NOW", not "hot ever".
  for (auto& sk : sketches_) sk.decay();
  // Re-arm only while the simulation still does real work (the Sampler
  // idiom), so a finished run can drain and return.
  if (store_->system().scheduler().busy()) {
    pending_ = store_->system().scheduler().after_housekeeping(
        cfg_.interval_ns, [this] { tick(); });
  }
}

}  // namespace optsync::elastic
