// ElasticController: the closed loop from telemetry to topology.
//
// Inputs, per control tick:
//   * the overload detector's verdict per base shard —
//     telemetry::assess_backlog over the live "optsync_shard_backlog"
//     series the standard service gauges maintain (the same series the
//     end-of-run drowning flags are computed from), and
//   * the per-shard KeySketch (fed by ShardedStore's access observer):
//     which single keys dominate a drowning shard's traffic.
//
// Outputs, at most one per cooldown window:
//   * hot-key promotion — a key carrying >= hot_key_share of its shard's
//     accesses is pinned to the least-loaded dedicated hot group
//     (DirectoryManager::promote);
//   * stripe split — otherwise, under the range policy, the drowning
//     shard donates the upper half of its remaining stripe to the coldest
//     base shard (DirectoryManager::split);
//   * root migration — otherwise, when the drowning shard's root node
//     hosts more roots than the least-loaded member, the sequencer moves
//     there online (RootMigrator::migrate).
// And in quiet ticks the inverse actions: pins whose keys went cold are
// demoted, donations whose src AND dst are both cold are merged back.
//
// Hysteresis, so the loop cannot flap: a shard must be flagged drowning
// for `drowning_ticks` CONSECUTIVE ticks before any action; every action
// starts a `cooldown_ticks` quiet period; at most one action is in flight
// at any time; demotion requires `cold_ticks` consecutive cold windows.
//
// Determinism: ticks are ordinary housekeeping events off the sim
// scheduler, re-armed only while the simulation is busy (the Sampler /
// CoalesceController idiom); decisions read only deterministic state.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "elastic/directory_manager.hpp"
#include "elastic/key_sketch.hpp"
#include "elastic/migrator.hpp"
#include "shard/shard_map.hpp"
#include "simkern/time.hpp"
#include "stats/service_report.hpp"
#include "telemetry/overload.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/series.hpp"

namespace optsync::shard {
class ShardedStore;
}

namespace optsync::elastic {

struct ElasticControllerConfig {
  /// Control tick period. Coarser than the telemetry sampler on purpose:
  /// the detector needs a few samples of history per decision.
  sim::Duration interval_ns = 100'000;

  /// Overload detector tuning for the LIVE verdict (mid-run series are
  /// shorter than end-of-run ones, so the defaults are slightly laxer
  /// than telemetry::OverloadConfig's).
  telemetry::OverloadConfig overload{};

  // --- hysteresis --------------------------------------------------------
  std::uint32_t drowning_ticks = 2;  ///< consecutive verdicts before acting
  std::uint32_t cooldown_ticks = 3;  ///< quiet ticks after every action
  std::uint32_t cold_ticks = 4;      ///< cold windows before demotion

  // --- policy ------------------------------------------------------------
  /// A single key carrying at least this share of its shard's recorded
  /// accesses is promotion-worthy.
  double hot_key_share = 0.15;
  /// Pins per hot group the controller will not exceed.
  std::uint32_t max_pins_per_hot = 4;
  /// A pinned key with fewer recorded accesses than this in a window is
  /// cold (one strike toward demotion).
  std::uint64_t min_hot_accesses = 4;
  /// Backlog at/below which a shard counts as cold for merge-back.
  double merge_backlog_max = 4.0;
  /// Enable the root-migration escape hatch.
  bool migrate_roots = true;

  std::size_t sketch_capacity = 8;
};

class ElasticController {
 public:
  /// `store`, `live`, and `series` must outlive the controller. `live` is
  /// the report the generator updates during the run; `series` is the
  /// SeriesSet the telemetry sampler appends to (the backlog series must
  /// be registered there via ShardedStore::register_telemetry).
  ElasticController(shard::ShardedStore& store,
                    const stats::ServiceReport& live,
                    const telemetry::SeriesSet& series,
                    ElasticControllerConfig cfg = {});

  ElasticController(const ElasticController&) = delete;
  ElasticController& operator=(const ElasticController&) = delete;

  /// Arms the periodic control tick and installs the access observer that
  /// feeds the key sketches.
  void start();
  /// Cancels any pending tick (the observer stays installed; it is cheap).
  void stop();

  /// Live gauges: per-base-shard top-key share and the directory epoch.
  void register_telemetry(telemetry::Sampler& sampler);

  // --- introspection -----------------------------------------------------
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t actions() const { return actions_; }
  [[nodiscard]] RootMigrator& migrator() { return migrator_; }
  [[nodiscard]] const RootMigrator& migrator() const { return migrator_; }
  [[nodiscard]] DirectoryManager& directory() { return dir_; }
  [[nodiscard]] const DirectoryManager& directory() const { return dir_; }
  [[nodiscard]] const KeySketch& sketch(shard::ShardId s) const {
    return sketches_.at(s);
  }
  [[nodiscard]] const ElasticControllerConfig& config() const { return cfg_; }

 private:
  void tick();
  /// Escalation ladder for one drowning shard: promote, else split, else
  /// migrate. Starts the cooldown when an action launched.
  void act_on(shard::ShardId s);
  /// Runs one mutation with the in-flight flag held.
  sim::Process run_action(std::function<sim::Process()> thunk);
  /// Evict-and-replace as ONE action: demote `victim`, then promote
  /// `cand` into the slot it freed (single cooldown window — the path a
  /// hotspot shift exercises for every displaced pin).
  sim::Process swap_pin(shard::Key victim, shard::Key cand);
  void launch(std::function<sim::Process()> thunk);
  [[nodiscard]] double backlog(shard::ShardId s) const;
  /// Least-pinned hot group with capacity, or shards() when none.
  [[nodiscard]] shard::ShardId pick_hot_group() const;
  /// Coldest non-drowning base shard != s, or base_shards() when none.
  [[nodiscard]] shard::ShardId pick_split_target(shard::ShardId s) const;
  /// Member node hosting the fewest roots (control node excluded), or
  /// kNoNode when the current placement is already minimal.
  [[nodiscard]] dsm::NodeId pick_migration_target(shard::ShardId s) const;
  void maybe_relax();  ///< demotions and merge-backs in quiet ticks
  /// Journals one ladder step with the inputs that triggered it: the
  /// shard's cached overload verdict (slope/peak from this tick), its
  /// live backlog, the sketch's top key + share, and the hysteresis state
  /// (`streak` is the relevant counter — drowning streak for escalations,
  /// cold-window count for demotions). No-op without a journal.
  void journal_step(const char* step, shard::ShardId s, std::uint32_t target,
                    std::uint32_t streak);

  shard::ShardedStore* store_;
  const stats::ServiceReport* live_;
  const telemetry::SeriesSet* series_;
  ElasticControllerConfig cfg_;
  RootMigrator migrator_;
  DirectoryManager dir_;
  std::vector<KeySketch> sketches_;    ///< indexed by owner ShardId
  std::vector<std::uint32_t> streak_;  ///< consecutive drowning ticks
  /// This tick's overload verdict per base shard (decision-journal inputs).
  std::vector<telemetry::OverloadVerdict> verdict_;
  /// Consecutive cold windows per promoted key (demotion hysteresis).
  std::unordered_map<shard::Key, std::uint32_t> pin_cold_;
  std::uint32_t cooldown_ = 0;
  bool action_busy_ = false;
  sim::EventId pending_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t actions_ = 0;
};

}  // namespace optsync::elastic
