#include "elastic/directory_manager.hpp"

#include <algorithm>

#include "shard/sharded_store.hpp"
#include "simkern/assert.hpp"

namespace optsync::elastic {

using shard::Key;
using shard::ShardId;
using shard::ShardMap;

DirectoryManager::DirectoryManager(shard::ShardedStore& store)
    : store_(&store) {
  OPTSYNC_EXPECT(store.elastic());
}

Key DirectoryManager::remaining_hi(ShardId s) const {
  if (const auto it = remaining_hi_.find(s); it != remaining_hi_.end()) {
    return it->second;
  }
  return store_->map().base_range(s).second;
}

bool DirectoryManager::has_donation(ShardId src) const {
  return std::any_of(donations_.begin(), donations_.end(),
                     [src](const Donation& d) { return d.src == src; });
}

sim::Process DirectoryManager::split(ShardId src, ShardId dst,
                                     std::uint64_t* out_moved) {
  OPTSYNC_EXPECT(store_->map().policy() == ShardMap::Policy::kRange);
  OPTSYNC_EXPECT(src < store_->base_shards());
  OPTSYNC_EXPECT(dst < store_->shards());
  OPTSYNC_EXPECT(src != dst);
  const Key lo = store_->map().base_range(src).first;
  const Key hi = remaining_hi(src);
  if (out_moved != nullptr) *out_moved = 0;
  if (hi - lo < 2) co_return;  // one key left: nothing to halve
  const Key mid = lo + (hi - lo) / 2;
  std::uint64_t moved = 0;
  co_await store_
      ->elastic_reassign(
          src, dst, [mid, hi](Key k) { return k >= mid && k < hi; },
          [mid, hi, dst](ShardMap& m) { m.assign_range(mid, hi, dst); },
          &moved)
      .join();
  remaining_hi_[src] = mid;
  donations_.push_back(Donation{mid, hi, src, dst});
  ++store_->shards_[src]->splits;
  ++stats_.splits;
  stats_.moved_slots += moved;
  if (out_moved != nullptr) *out_moved = moved;
}

sim::Process DirectoryManager::merge_back(ShardId src,
                                          std::uint64_t* out_moved) {
  if (out_moved != nullptr) *out_moved = 0;
  // Newest donation first: LIFO keeps the remaining base range contiguous.
  const auto rit =
      std::find_if(donations_.rbegin(), donations_.rend(),
                   [src](const Donation& d) { return d.src == src; });
  if (rit == donations_.rend()) co_return;
  const Donation d = *rit;
  donations_.erase(std::next(rit).base());
  std::uint64_t moved = 0;
  co_await store_
      ->elastic_reassign(
          d.dst, d.src, [d](Key k) { return k >= d.lo && k < d.hi; },
          [d](ShardMap& m) { m.clear_range(d.lo, d.hi); }, &moved)
      .join();
  remaining_hi_[src] = d.hi;
  ++store_->shards_[src]->merges;
  ++stats_.merges;
  stats_.moved_slots += moved;
  if (out_moved != nullptr) *out_moved = moved;
}

sim::Process DirectoryManager::promote(Key key, ShardId hot) {
  OPTSYNC_EXPECT(key != 0);
  OPTSYNC_EXPECT(hot < store_->shards());
  const ShardId home = store_->map().shard_of(key);
  if (home == hot) co_return;
  std::uint64_t moved = 0;
  co_await store_
      ->elastic_reassign(
          home, hot, [key](Key k) { return k == key; },
          [key, hot](ShardMap& m) { m.pin(key, hot); }, &moved)
      .join();
  pins_.push_back(Pin{key, home, hot});
  ++store_->shards_[home]->promotions;
  ++stats_.promotions;
  stats_.moved_slots += moved;
}

sim::Process DirectoryManager::demote(Key key) {
  const auto it = std::find_if(pins_.begin(), pins_.end(),
                               [key](const Pin& p) { return p.key == key; });
  if (it == pins_.end()) co_return;
  const Pin pin = *it;
  pins_.erase(it);
  // Where the directory routes the key once the pin is gone — overrides
  // may have moved its home range since the promotion.
  ShardMap probe = store_->map();
  probe.unpin(key);
  const ShardId dst = probe.shard_of(key);
  if (dst == pin.hot) {
    // Degenerate (shouldn't happen: base policy never routes to hot
    // groups) — just drop the pin without moving data.
    std::uint64_t moved = 0;
    co_await store_
        ->elastic_reassign(
            pin.hot, pin.home, [](Key) { return false; },
            [key](ShardMap& m) { m.unpin(key); }, &moved)
        .join();
  } else {
    std::uint64_t moved = 0;
    co_await store_
        ->elastic_reassign(
            pin.hot, dst, [key](Key k) { return k == key; },
            [key](ShardMap& m) { m.unpin(key); }, &moved)
        .join();
    stats_.moved_slots += moved;
    ++store_->shards_[dst]->demotions;
  }
  ++stats_.demotions;
}

}  // namespace optsync::elastic
