// Skew-adaptive directory mutations: stripe split/merge and hot-key
// promotion/demotion over ShardedStore's versioned ShardMap.
//
// Each mutation is one two-phase epoch bump executed through the store's
// elastic_reassign primitive: under the {src, dst} shard locks the
// affected slots move, every src orec stripe is bumped (dooming OCC
// transactions speculated at the old epoch), both shards commit one write
// section (the serializability ledger stays exact), the outgoing map is
// snapshotted into the redirect history, and the new epoch is installed —
// all before either lock is released, so no operation ever observes a
// half-moved directory. In-flight ops at the old epoch are either drained
// (they re-check ownership after lock acquisition and chase the new
// owner) or doomed at OCC validation; stale-map clients get a redirect,
// never a wrong answer.
//
// The manager tracks what it did — donations (split ranges) as a LIFO per
// source shard so merges restore contiguous base ranges, and pins with
// their home shards so demotion returns keys where the base policy puts
// them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "shard/shard_map.hpp"
#include "simkern/coro.hpp"

namespace optsync::shard {
class ShardedStore;
}

namespace optsync::elastic {

class DirectoryManager {
 public:
  explicit DirectoryManager(shard::ShardedStore& store);

  DirectoryManager(const DirectoryManager&) = delete;
  DirectoryManager& operator=(const DirectoryManager&) = delete;

  /// Splits the upper half of `src`'s remaining stripe range to `dst`
  /// (range policy only). No-op when fewer than 2 keys remain. `out_moved`
  /// (optional) receives the number of occupied slots that moved.
  sim::Process split(shard::ShardId src, shard::ShardId dst,
                     std::uint64_t* out_moved = nullptr);

  /// Takes `src`'s most recent donation back (the inverse split). No-op
  /// when src has no outstanding donation.
  sim::Process merge_back(shard::ShardId src,
                          std::uint64_t* out_moved = nullptr);

  /// Pins `key` to shard `hot` (typically a dedicated hot group) and moves
  /// its slot there. No-op when the key already routes to `hot`.
  sim::Process promote(shard::Key key, shard::ShardId hot);

  /// Unpins `key` and returns its slot to wherever the directory routes it
  /// without the pin. No-op for keys this manager never promoted.
  sim::Process demote(shard::Key key);

  /// One outstanding split donation: [lo, hi) moved src -> dst.
  struct Donation {
    shard::Key lo = 0;
    shard::Key hi = 0;
    shard::ShardId src = 0;
    shard::ShardId dst = 0;
  };
  [[nodiscard]] const std::vector<Donation>& donations() const {
    return donations_;
  }

  /// One outstanding promotion: `key` pinned home -> hot.
  struct Pin {
    shard::Key key = 0;
    shard::ShardId home = 0;
    shard::ShardId hot = 0;
  };
  [[nodiscard]] const std::vector<Pin>& pins() const { return pins_; }

  [[nodiscard]] bool has_donation(shard::ShardId src) const;

  struct Stats {
    std::uint64_t splits = 0;
    std::uint64_t merges = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t moved_slots = 0;  ///< occupied slots relocated, total
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// The still-owned upper bound of a shard's base range after donations
  /// (absent = the full base range).
  [[nodiscard]] shard::Key remaining_hi(shard::ShardId s) const;

  shard::ShardedStore* store_;
  std::vector<Donation> donations_;
  std::vector<Pin> pins_;
  std::unordered_map<shard::ShardId, shard::Key> remaining_hi_;
  Stats stats_;
};

}  // namespace optsync::elastic
