#include "elastic/key_sketch.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::elastic {

KeySketch::KeySketch(std::size_t capacity) : cap_(capacity) {
  OPTSYNC_EXPECT(capacity >= 1);
  entries_.reserve(capacity);
}

void KeySketch::record(shard::Key key) {
  ++total_;
  for (Entry& e : entries_) {
    if (e.key == key) {
      ++e.count;
      return;
    }
  }
  if (entries_.size() < cap_) {
    entries_.push_back(Entry{key, 1});
    return;
  }
  auto min_it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.count < b.count; });
  min_it->key = key;
  ++min_it->count;
}

void KeySketch::decay() {
  total_ /= 2;
  for (Entry& e : entries_) e.count /= 2;
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) { return e.count == 0; }),
                 entries_.end());
}

std::vector<KeySketch::Entry> KeySketch::top() const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

std::uint64_t KeySketch::count(shard::Key key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return e.count;
  }
  return 0;
}

double KeySketch::share(shard::Key key) const {
  return total_ > 0
             ? static_cast<double>(count(key)) / static_cast<double>(total_)
             : 0.0;
}

}  // namespace optsync::elastic
