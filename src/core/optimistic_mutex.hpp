// Optimistic mutual exclusion under group write consistency (paper §4).
//
// The central contribution of the paper: a requester that estimates the lock
// to be free sends a non-blocking lock request and executes the critical
// section immediately, before permission arrives. Safety comes from the
// substrate:
//   * the group root discards mutex-data writes from non-holders, so
//     speculative updates are invisible to every other node;
//   * a lock-change interrupt atomically suspends insharing so a rollback
//     can restore journal state without racing incoming updates;
//   * hardware blocking drops late self-echoes that could overwrite
//     restored values (Fig. 6).
//
// OptimisticMutex::execute() is the library equivalent of the paper's
// compiler-generated transformation (Fig. 4): the caller provides the
// section body plus its write-set and local-variable save/restore hooks, and
// the mutex decides per-execution between the optimistic and regular paths
// using the local lock copy and the usage-frequency history.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/rollback_journal.hpp"
#include "core/usage_history.hpp"
#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "stats/lock_stats.hpp"
#include "sync/lock.hpp"
#include "trace/recorder.hpp"

namespace optsync::core {

/// A critical section prepared for optimistic execution.
struct Section {
  /// Mutex-data variables the body writes — the compiler's save list
  /// (Fig. 4 lines 14-15). Every shared variable the body may change MUST
  /// be listed or rollback cannot restore it.
  std::vector<dsm::VarId> shared_writes;

  /// Optional save/restore hooks for the body's local variables
  /// (the paper's saved_lcl_c). save_locals runs before speculation;
  /// restore_locals runs on rollback.
  std::function<void()> save_locals;
  std::function<void()> restore_locals;

  /// The section body. Invoked once for a successful execution; invoked a
  /// second time (after rollback, once the lock is actually held) when a
  /// speculation fails — so it must be re-runnable.
  std::function<sim::Process(dsm::DsmNode&)> body;
};

/// Per-execution accounting, filled in by execute().
struct ExecuteStats {
  bool used_optimistic = false;
  bool rolled_back = false;
  sim::Time requested_at = 0;
  sim::Time finished_at = 0;
};

class OptimisticMutex : public sync::Lock {
 public:
  struct Config {
    /// Master switch; false degrades execute() to the regular GWC queue
    /// lock protocol (used for the non-optimistic comparison lines).
    bool enable_optimistic = true;

    /// Take the regular path when the history estimate exceeds this
    /// (paper example: 0.30).
    double history_threshold = 0.30;

    /// EWMA decay of the history (paper example: 0.95).
    double history_decay = 0.95;

    /// Local-memory cost to save or restore one journal entry. Two 8-byte
    /// words through 400 MB/s memory = 40 ns.
    sim::Duration save_cost_per_var_ns = 40;

    /// One-way context-swap cost. A blocked request ("either a context
    /// swap or a busy wait occurs", §5) spins for up to this long first;
    /// if the grant still has not arrived it swaps out and pays 2x this on
    /// top of the wait (spin-then-swap). 0 models pure busy-waiting.
    sim::Duration context_switch_ns = 0;

    /// Optional per-lock metrics record, shared by every node using this
    /// mutex (acquire/hold latencies, speculation outcomes, history-gate
    /// decisions). Not owned; nullptr disables collection.
    stats::LockStats* lock_stats = nullptr;
  };

  /// `lock` must be a lock variable defined in `sys`.
  OptimisticMutex(dsm::DsmSystem& sys, dsm::VarId lock, Config cfg);
  OptimisticMutex(dsm::DsmSystem& sys, dsm::VarId lock)
      : OptimisticMutex(sys, lock, Config{}) {}

  OptimisticMutex(const OptimisticMutex&) = delete;
  OptimisticMutex& operator=(const OptimisticMutex&) = delete;

  /// Executes `section` on node `n` under this mutex. Chooses the
  /// optimistic or regular path per the paper's Fig. 4 test; handles
  /// speculation failure by rollback + regular wait + re-execution.
  ///
  /// Precondition violations (nested execution, malformed sections) throw
  /// synchronously. Returns the driving Process; callers co_await its
  /// join() (or run the scheduler to completion).
  sim::Process execute(dsm::NodeId n, Section section,
                       ExecuteStats* out = nullptr);

  // --- sync::Lock interface --------------------------------------------
  /// Regular-path (non-speculative) acquisition for callers that manage
  /// the critical section themselves. execute() remains the full Fig. 4
  /// transformation; this is the §2 queue-lock protocol on the same lock
  /// variable, sharing the same wait-time accounting.
  sim::Process acquire(dsm::NodeId n) override;

  /// Writes FREE; must follow the holder's final data writes.
  void release(dsm::NodeId n) override;

  /// True when node `n`'s local copy shows `n` as the holder.
  [[nodiscard]] bool held_by(dsm::NodeId n) const override;

  /// Advisory Fig. 4 line 07 probe: optimism enabled, the local lock copy
  /// reads FREE, and the EWMA history does not indicate usage.
  [[nodiscard]] bool try_speculate(dsm::NodeId n) const override;

  [[nodiscard]] sync::LockStatsView stats_view() const override {
    return stats_;
  }

  /// The node's current busyness estimate for this lock.
  [[nodiscard]] double history_value(dsm::NodeId n) const;

  /// True while node `n` is inside execute() (Fig. 4 line 01/28 guard).
  [[nodiscard]] bool in_section(dsm::NodeId n) const;

  /// Live counters in the unified shape (executions, optimistic_attempts,
  /// rollbacks, ... — the historical field names are all preserved there).
  [[nodiscard]] const sync::LockStatsView& stats() const { return stats_; }

  [[nodiscard]] dsm::VarId lock_var() const { return lock_; }

 private:
  struct NodeState {
    explicit NodeState(double decay) : history(decay) {}
    UsageHistory history;
    RollbackJournal journal;
    bool in_section = false;
    bool variables_saved = false;   // Fig. 4 line 02/16/24
    bool pending_rollback = false;  // set by the interrupt, consumed by the
                                    // execute coroutine
    bool rolled_back = false;       // body must re-run after grant
  };

  NodeState& state(dsm::NodeId n);
  void on_lock_interrupt(dsm::NodeId n, dsm::Word value);
  sim::Process execute_impl(dsm::NodeId n, Section section, ExecuteStats* out);
  void emit(dsm::NodeId n, trace::EventKind kind, dsm::Word value);

  dsm::DsmSystem* sys_;
  dsm::VarId lock_;
  Config cfg_;
  std::unordered_map<dsm::NodeId, NodeState> states_;
  sync::LockStatsView stats_;
};

}  // namespace optsync::core
