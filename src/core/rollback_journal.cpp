#include "core/rollback_journal.hpp"

#include "simkern/assert.hpp"

namespace optsync::core {

void RollbackJournal::snapshot(const dsm::DsmNode& node,
                               const std::vector<dsm::VarId>& vars) {
  OPTSYNC_EXPECT(shared_.empty());
  shared_.reserve(vars.size());
  for (const dsm::VarId v : vars) {
    shared_.push_back(Saved{v, node.read(v)});
  }
}

void RollbackJournal::add_local(std::function<void()> save,
                                std::function<void()> restore) {
  OPTSYNC_EXPECT(save != nullptr && restore != nullptr);
  save();
  local_restores_.push_back(std::move(restore));
}

void RollbackJournal::restore(dsm::DsmNode& node) {
  for (const Saved& s : shared_) {
    node.poke(s.var, s.value);
  }
  for (auto& r : local_restores_) r();
  discard();
}

void RollbackJournal::discard() {
  shared_.clear();
  local_restores_.clear();
}

}  // namespace optsync::core
