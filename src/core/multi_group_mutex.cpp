#include "core/multi_group_mutex.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::core {

MultiGroupMutex::MultiGroupMutex(dsm::DsmSystem& sys,
                                 std::vector<dsm::VarId> locks)
    : sys_(&sys), ordered_(std::move(locks)) {
  OPTSYNC_EXPECT(!ordered_.empty());
  std::sort(ordered_.begin(), ordered_.end());
  OPTSYNC_EXPECT(std::adjacent_find(ordered_.begin(), ordered_.end()) ==
                 ordered_.end());  // no duplicate locks
  clients_.reserve(ordered_.size());
  for (const dsm::VarId l : ordered_) {
    OPTSYNC_EXPECT(sys.var(l).kind == dsm::VarKind::kLock);
    clients_.push_back(std::make_unique<sync::GwcQueueLock>(sys, l));
  }
}

sim::Process MultiGroupMutex::acquire(dsm::NodeId n) {
  // Validate synchronously — a coroutine would capture the violation in a
  // failed Process instead of throwing to the caller.
  //
  // The canonical-order invariant is re-asserted here (not only in the
  // constructor) so a future mutation of ordered_ cannot silently undo
  // the deadlock-avoidance argument documented in the header.
  OPTSYNC_EXPECT(std::is_sorted(ordered_.begin(), ordered_.end()));
  for (const dsm::VarId l : ordered_) {
    OPTSYNC_EXPECT(sys_->group(sys_->var(l).group).contains(n));
  }
  return acquire_impl(n);
}

sim::Process MultiGroupMutex::acquire_impl(dsm::NodeId n) {
  const sim::Time started = sys_->scheduler().now();
  for (auto& client : clients_) {
    co_await client->acquire(n).join();
  }
  ++stats_.acquisitions;
  const sim::Duration waited = sys_->scheduler().now() - started;
  stats_.total_wait_ns += waited;
  stats_.max_wait_ns = std::max(stats_.max_wait_ns, waited);
}

void MultiGroupMutex::release(dsm::NodeId n) {
  for (auto it = clients_.rbegin(); it != clients_.rend(); ++it) {
    (*it)->release(n);
  }
  ++stats_.releases;
}

bool MultiGroupMutex::held_by(dsm::NodeId n) const {
  for (const auto& client : clients_) {
    if (!client->held_by(n)) return false;
  }
  return true;
}

}  // namespace optsync::core
