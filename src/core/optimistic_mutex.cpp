#include "core/optimistic_mutex.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "simkern/log.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::core {

using dsm::kLockFree;
using dsm::lock_grant_value;
using dsm::lock_held;
using dsm::lock_request_value;
using dsm::NodeId;
using dsm::VarId;
using dsm::Word;

OptimisticMutex::OptimisticMutex(dsm::DsmSystem& sys, VarId lock, Config cfg)
    : sys_(&sys), lock_(lock), cfg_(cfg) {
  OPTSYNC_EXPECT(sys.var(lock).kind == dsm::VarKind::kLock);
}

OptimisticMutex::NodeState& OptimisticMutex::state(NodeId n) {
  auto it = states_.find(n);
  if (it == states_.end()) {
    it = states_.emplace(n, NodeState(cfg_.history_decay)).first;
  }
  return it->second;
}

bool OptimisticMutex::held_by(NodeId n) const {
  return sys_->node(n).read(lock_) == lock_grant_value(n);
}

bool OptimisticMutex::try_speculate(NodeId n) const {
  if (!cfg_.enable_optimistic) return false;
  if (sys_->node(n).read(lock_) != kLockFree) return false;
  const auto it = states_.find(n);
  return it == states_.end() ||
         !it->second.history.indicates_usage(cfg_.history_threshold);
}

sim::Process OptimisticMutex::acquire(NodeId n) {
  auto& node = sys_->node(n);
  OPTSYNC_EXPECT(!held_by(n));  // no nested acquisition
  auto& st = state(n);
  const sim::Time requested = sys_->scheduler().now();

  const Word old_val = node.atomic_exchange(lock_, lock_request_value(n));
  emit(n, trace::EventKind::kLockRequest, lock_request_value(n));
  st.history.observe(
      lock_held(old_val) && dsm::lock_holder(old_val) != n ? 1.0 : 0.0);
  while (node.read(lock_) != lock_grant_value(n)) {
    co_await node.on_change(lock_).wait();
  }
  emit(n, trace::EventKind::kLockAcquire, lock_grant_value(n));

  const sim::Duration waited = sys_->scheduler().now() - requested;
  ++stats_.acquisitions;
  stats_.total_wait_ns += waited;
  stats_.max_wait_ns = std::max(stats_.max_wait_ns, waited);
}

void OptimisticMutex::release(NodeId n) {
  OPTSYNC_EXPECT(held_by(n));
  sys_->node(n).write(lock_, kLockFree);
  emit(n, trace::EventKind::kLockRelease, kLockFree);
  ++stats_.releases;
}

double OptimisticMutex::history_value(NodeId n) const {
  const auto it = states_.find(n);
  return it == states_.end() ? 0.0 : it->second.history.value();
}

bool OptimisticMutex::in_section(NodeId n) const {
  const auto it = states_.find(n);
  return it != states_.end() && it->second.in_section;
}

void OptimisticMutex::emit(NodeId n, trace::EventKind kind, Word value) {
  auto* rec = sys_->recorder();
  if (rec == nullptr) return;
  trace::Event e;
  e.t = sys_->scheduler().now();
  e.kind = kind;
  e.node = n;
  e.group = sys_->var(lock_).group;
  e.var = lock_;
  e.value = value;
  e.origin = n;
  e.label = "lock";
  rec->record(e);
}

// Interrupt code (paper Fig. 5). Invoked by the sharing interface when an
// armed lock change arrives; insharing is already suspended. Runs the
// decision logic; actual rollback work (which takes simulated time) is
// deferred to the execute() coroutine via pending_rollback.
void OptimisticMutex::on_lock_interrupt(NodeId n, Word value) {
  auto& st = state(n);
  auto& node = sys_->node(n);

  if (dsm::lock_granted_to(value, n)) {
    // Permission for the local CPU: stop watching, let queued updates flow.
    node.disarm_interrupt(lock_);
    node.resume_insharing();
    return;
  }
  if (value == kLockFree) {
    // Momentary free (previous holder released before our request reached
    // the root). Keep watching; our grant will follow.
    node.resume_insharing();
    return;
  }

  // Another processor got the lock.
  OPTSYNC_ENSURE(lock_held(value));
  st.history.observe(1.0);  // P9: update usage frequency history
  if (!st.variables_saved) {
    // Regular path in progress — values were never speculated on.
    node.resume_insharing();
    return;
  }
  // Optimistic execution failed: leave insharing suspended so the journal
  // can be restored before any of the new holder's updates touch memory.
  // The execute() coroutine performs the timed restore and then resumes
  // insharing (rollback code, Fig. 4 lines 22-26).
  st.pending_rollback = true;
  sim::log_debug("n", n, " speculation failed: lock granted to n",
                 dsm::lock_holder(value));
}

sim::Process OptimisticMutex::execute(NodeId n, Section section,
                                      ExecuteStats* out) {
  // Validate synchronously: a coroutine would capture these as a failed
  // Process instead of throwing to the caller.
  OPTSYNC_EXPECT(section.body != nullptr);
  OPTSYNC_EXPECT((section.save_locals == nullptr) ==
                 (section.restore_locals == nullptr));
  // Fig. 4 line 01/28: nested acquisition is a programming error — on this
  // lock (per-mutex state) or on any other (the node models a single
  // instruction stream; DsmNode tracks occupancy across mutexes).
  if (state(n).in_section) {
    throw ContractViolation("cannot safely nest mutex lock requests");
  }
  sys_->node(n).enter_mutex_section();  // throws on cross-mutex overlap
  return execute_impl(n, std::move(section), out);
}

namespace {
/// Clears the node's occupancy flag even if the section body throws.
struct SectionOccupancy {
  dsm::DsmNode* node;
  ~SectionOccupancy() {
    if (node != nullptr) node->exit_mutex_section();
  }
};
}  // namespace

sim::Process OptimisticMutex::execute_impl(NodeId n, Section section,
                                           ExecuteStats* out) {
  auto& node = sys_->node(n);
  SectionOccupancy occupancy{&node};  // entered by the wrapper
  auto& sched = sys_->scheduler();
  auto& st = state(n);
  st.in_section = true;
  st.variables_saved = false;  // line 02
  st.pending_rollback = false;
  st.rolled_back = false;
  ++stats_.executions;

  ExecuteStats local_stats;
  local_stats.requested_at = sched.now();

  // Causal tracing: hang the request's wire/queue legs under a lock-wait
  // umbrella span. The atomic_exchange ships the request synchronously, so
  // repointing the node's context parent just around it is safe.
  auto* trc = sys_->tracer();
  const telemetry::SpanContext octx =
      trc != nullptr ? trc->node_ctx(n) : telemetry::SpanContext{};
  telemetry::SpanId wait_span = 0;
  if (trc != nullptr && octx.valid()) {
    wait_span =
        trc->start_span(octx.trace, octx.span, telemetry::SpanKind::kLockWait,
                        n, local_stats.requested_at);
    trc->set_node_parent(n, wait_span);
  }

  // Lines 03-04: atomically save the old local value and request the lock.
  const Word old_val = node.atomic_exchange(lock_, lock_request_value(n));
  if (wait_span != 0) trc->set_node_parent(n, octx.span);
  emit(n, trace::EventKind::kLockRequest, lock_request_value(n));

  // Line 05: update usage frequency history from the observed local state.
  const bool was_busy = lock_held(old_val) && dsm::lock_holder(old_val) != n;
  st.history.observe(was_busy ? 1.0 : 0.0);

  // Line 06: watch for lock changes; the interrupt atomically suspends
  // insharing when it fires.
  node.arm_interrupt(lock_, [this, n](VarId, Word value, NodeId) {
    on_lock_interrupt(n, value);
  });

  // Line 07: does anything indicate current or recent usage?
  const bool indicates_usage =
      was_busy || old_val != kLockFree ||
      st.history.indicates_usage(cfg_.history_threshold);
  // Did the EWMA estimate alone veto speculation? (Local evidence — a held
  // or in-flight lock word — would have forced the regular path anyway.)
  const bool history_veto =
      cfg_.enable_optimistic && !was_busy && old_val == kLockFree &&
      st.history.indicates_usage(cfg_.history_threshold);

  sim::Time acquired_at = 0;  // ownership confirmed (grant observed locally)

  if (!cfg_.enable_optimistic || indicates_usage) {
    // ---- Regular path (lines 08-12) ----------------------------------
    ++stats_.regular_paths;
    if (history_veto) {
      ++stats_.history_vetoes;
      if (cfg_.lock_stats != nullptr) ++cfg_.lock_stats->history_vetoes;
      emit(n, trace::EventKind::kHistoryVeto, old_val);
    }
    // Line 08. No interrupt can have fired yet: arming and this branch run
    // within one scheduler event, so disarming is race-free.
    node.disarm_interrupt(lock_);
    const sim::Time wait_began = sched.now();
    while (node.read(lock_) != lock_grant_value(n)) {  // line 10: reg-wait
      co_await node.on_change(lock_).wait();
    }
    if (cfg_.context_switch_ns > 0 &&
        sched.now() - wait_began > cfg_.context_switch_ns) {
      // Spin-then-swap: the grant outlasted the spin budget, so the
      // processor swapped out and now pays the swap out + in.
      ++stats_.context_switches;
      co_await sim::delay(sched, 2 * cfg_.context_switch_ns);
    }
    acquired_at = sched.now();
    if (wait_span != 0) trc->end_span(wait_span, acquired_at);
    emit(n, trace::EventKind::kLockAcquire, lock_grant_value(n));
    co_await section.body(node).join();  // lines 11-12
  } else {
    // ---- Optimistic path (lines 14-19) --------------------------------
    ++stats_.optimistic_attempts;
    local_stats.used_optimistic = true;
    if (cfg_.lock_stats != nullptr) {
      ++cfg_.lock_stats->speculative_attempts;
      ++cfg_.lock_stats->history_allows;
    }
    emit(n, trace::EventKind::kSpeculateBegin, old_val);
    const sim::Time spec_begin = sched.now();

    // Lines 14-15: save every variable the section will change.
    st.journal.snapshot(node, section.shared_writes);
    if (section.save_locals) {
      st.journal.add_local(section.save_locals, section.restore_locals);
    }
    st.variables_saved = true;  // line 16
    const sim::Duration save_cost =
        cfg_.save_cost_per_var_ns *
        (section.shared_writes.size() + (section.save_locals ? 1 : 0));
    co_await sim::delay(sched, save_cost);

    // Lines 17-18: speculative execution. Shared writes stream to the
    // root, which discards them unless/until this node holds the lock.
    co_await section.body(node).join();
    if (trc != nullptr && octx.valid()) {
      trc->record_span(octx.trace, octx.span, telemetry::SpanKind::kSpeculate,
                       n, spec_begin, sched.now());
    }

    // Line 19: wait for the lock answer; handle rollback if the interrupt
    // reported that another CPU won.
    const sim::Time wait_began = sched.now();
    for (;;) {
      if (st.pending_rollback) {
        // Rollback (lines 22-26): restore takes local-memory time; the
        // sharing interface keeps insharing suspended throughout.
        OPTSYNC_ENSURE(node.insharing_suspended());
        const sim::Time rb_begin = sched.now();
        const sim::Duration restore_cost =
            cfg_.save_cost_per_var_ns * st.journal.shared_count();
        co_await sim::delay(sched, restore_cost);
        if (trc != nullptr && octx.valid()) {
          trc->record_span(octx.trace, wait_span != 0 ? wait_span : octx.span,
                           telemetry::SpanKind::kRollback, n, rb_begin,
                           sched.now());
        }
        st.journal.restore(node);
        st.variables_saved = false;  // line 24
        st.pending_rollback = false;
        st.rolled_back = true;
        ++stats_.rollbacks;
        local_stats.rolled_back = true;
        if (cfg_.lock_stats != nullptr) ++cfg_.lock_stats->rollbacks;
        emit(n, trace::EventKind::kRollback, node.read(lock_));
        node.resume_insharing();  // line 25
        continue;                 // line 26: back to the wait loop
      }
      if (node.read(lock_) == lock_grant_value(n)) break;
      co_await node.on_change(lock_).wait();
    }
    if (cfg_.context_switch_ns > 0 &&
        sched.now() - wait_began > cfg_.context_switch_ns) {
      ++stats_.context_switches;
      co_await sim::delay(sched, 2 * cfg_.context_switch_ns);
    }
    acquired_at = sched.now();
    if (wait_span != 0) trc->end_span(wait_span, acquired_at);

    if (st.rolled_back) {
      // The speculation was undone; run the section for real now that the
      // lock is held and every local shared value is valid (GWC ordering:
      // all of the previous holder's writes preceded our grant).
      emit(n, trace::EventKind::kLockAcquire, lock_grant_value(n));
      co_await section.body(node).join();
    } else {
      ++stats_.optimistic_successes;
      if (cfg_.lock_stats != nullptr) ++cfg_.lock_stats->speculative_commits;
      emit(n, trace::EventKind::kSpeculateCommit, lock_grant_value(n));
      emit(n, trace::EventKind::kLockAcquire, lock_grant_value(n));
      st.journal.discard();
      st.variables_saved = false;
    }
  }

  // Line 27: release. The FREE write follows all of this node's data
  // writes through the root, so every member sees data-before-release.
  node.disarm_interrupt(lock_);
  node.write(lock_, kLockFree);
  emit(n, trace::EventKind::kLockRelease, kLockFree);
  st.in_section = false;
  local_stats.finished_at = sched.now();
  if (trc != nullptr && octx.valid()) {
    // Critical-section compute: ownership confirmed through the release
    // write. Wins the attribution sweep over any overlapping wait-side
    // leg — latency hiding is the paper's whole point.
    trc->record_span(octx.trace, octx.span, telemetry::SpanKind::kCs, n,
                     acquired_at, local_stats.finished_at);
  }
  // Unified-view accounting: every completed execution is one confirmed
  // acquisition + one release; the wait is request-to-ownership.
  ++stats_.acquisitions;
  ++stats_.releases;
  const sim::Duration waited = acquired_at - local_stats.requested_at;
  stats_.total_wait_ns += waited;
  stats_.max_wait_ns = std::max(stats_.max_wait_ns, waited);
  if (cfg_.lock_stats != nullptr) {
    ++cfg_.lock_stats->acquisitions;
    cfg_.lock_stats->acquire_ns.record(acquired_at -
                                       local_stats.requested_at);
    cfg_.lock_stats->hold_ns.record(sched.now() - acquired_at);
  }
  if (out != nullptr) *out = local_stats;
}

}  // namespace optsync::core
