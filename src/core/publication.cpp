#include "core/publication.hpp"

#include "simkern/assert.hpp"

namespace optsync::core {

PublishedRecord::PublishedRecord(dsm::DsmSystem& sys, dsm::GroupId g,
                                 std::string name, std::size_t fields,
                                 dsm::NodeId writer)
    : sys_(&sys), writer_(writer) {
  OPTSYNC_EXPECT(fields >= 1);
  OPTSYNC_EXPECT(sys.group(g).contains(writer));
  version_ = sys.define_data(name + ".version", g, 0);
  fields_.reserve(fields);
  for (std::size_t i = 0; i < fields; ++i) {
    fields_.push_back(
        sys.define_data(name + ".f" + std::to_string(i), g, 0));
  }
}

void PublishedRecord::publish(const std::vector<dsm::Word>& values) {
  OPTSYNC_EXPECT(values.size() == fields_.size());
  auto& node = sys_->node(writer_);
  // Odd version: "writing". All three phases are ordinary eagershared
  // writes from one source, so GWC delivers them in this exact order on
  // every member.
  node.write(version_, version_value_ + 1);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    node.write(fields_[i], values[i]);
  }
  version_value_ += 2;
  node.write(version_, version_value_);  // even: quiescent
  ++stats_.publishes;
}

sim::Process PublishedRecord::publish_slowly(std::vector<dsm::Word> values,
                                             sim::Duration per_field_ns) {
  OPTSYNC_EXPECT(values.size() == fields_.size());
  auto& node = sys_->node(writer_);
  auto& sched = sys_->scheduler();
  node.write(version_, version_value_ + 1);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    co_await sim::delay(sched, per_field_ns);
    node.write(fields_[i], values[i]);
  }
  version_value_ += 2;
  node.write(version_, version_value_);
  ++stats_.publishes;
}

std::optional<std::vector<dsm::Word>> PublishedRecord::try_read(
    dsm::NodeId n) const {
  const auto& node = sys_->node(n);
  const dsm::Word v1 = node.read(version_);
  if (v1 % 2 != 0) {
    ++stats_.retried_reads;
    return std::nullopt;  // publish in flight locally
  }
  std::vector<dsm::Word> out;
  out.reserve(fields_.size());
  for (const dsm::VarId f : fields_) out.push_back(node.read(f));
  const dsm::Word v2 = node.read(version_);
  if (v1 != v2) {
    ++stats_.retried_reads;
    return std::nullopt;  // relocked mid-read: reread (paper §2)
  }
  ++stats_.clean_reads;
  return out;
}

sim::Process PublishedRecord::read(dsm::NodeId n, std::vector<dsm::Word>* out) {
  OPTSYNC_EXPECT(out != nullptr);
  auto& node = sys_->node(n);
  for (;;) {
    // NOTE: a single scheduler event cannot interleave with deliveries, so
    // a same-event try_read always succeeds or fails atomically; waiting on
    // the version signal yields until the in-flight publish completes.
    auto snapshot = try_read(n);
    if (snapshot.has_value()) {
      *out = std::move(*snapshot);
      co_return;
    }
    co_await node.on_change(version_).wait();
  }
}

}  // namespace optsync::core
