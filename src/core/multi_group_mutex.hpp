// Mutual exclusion across multiple sharing groups (paper §2, last lines).
//
// "Mutual exclusion across multiple groups requires permissions from all the
// involved roots. Routing corresponding locking messages and data changes on
// the same paths through the roots guarantees a consistent view of variable
// updates."
//
// Each group's root manages its own queue lock; a cross-group critical
// section acquires one lock per involved group.
//
// CANONICAL LOCK ORDER (deadlock-avoidance invariant): every multi-lock
// acquisition in the system — this mutex AND the OCC commit protocol in
// txn::TxnManager — acquires in strictly ascending lock VarId. This makes
// deadlock impossible regardless of how sections overlap or which path
// (pessimistic or optimistic) they take: the resource-ordering argument —
// a cycle in the wait-for graph would need some node to hold a
// higher-ordered lock while waiting for a lower one. The constructor
// sorts its input into this order and acquire() asserts it before every
// acquisition; any new multi-lock caller must follow the same order.
#pragma once

#include <vector>

#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "sync/gwc_lock.hpp"
#include "sync/lock.hpp"

namespace optsync::core {

class MultiGroupMutex : public sync::Lock {
 public:
  /// `locks` may live in any number of distinct groups. They are reordered
  /// into the global acquisition order internally.
  MultiGroupMutex(dsm::DsmSystem& sys, std::vector<dsm::VarId> locks);

  MultiGroupMutex(const MultiGroupMutex&) = delete;
  MultiGroupMutex& operator=(const MultiGroupMutex&) = delete;

  /// Acquires every lock, in global order. The caller must be a member of
  /// every involved group. Use as: co_await m.acquire(n).join();
  sim::Process acquire(dsm::NodeId n) override;

  /// Releases every lock, in reverse order.
  void release(dsm::NodeId n) override;

  /// True when node `n` holds all the locks.
  [[nodiscard]] bool held_by(dsm::NodeId n) const override;

  [[nodiscard]] const std::vector<dsm::VarId>& locks() const {
    return ordered_;
  }

  /// Unified counters. The wait here is the whole-chain acquire latency
  /// (first request to last grant), not a per-constituent-lock figure.
  [[nodiscard]] const sync::LockStatsView& stats() const { return stats_; }
  [[nodiscard]] sync::LockStatsView stats_view() const override {
    return stats_;
  }

 private:
  sim::Process acquire_impl(dsm::NodeId n);

  dsm::DsmSystem* sys_;
  std::vector<dsm::VarId> ordered_;
  std::vector<std::unique_ptr<sync::GwcQueueLock>> clients_;
  sync::LockStatsView stats_;
};

}  // namespace optsync::core
