// Mutual exclusion across multiple sharing groups (paper §2, last lines).
//
// "Mutual exclusion across multiple groups requires permissions from all the
// involved roots. Routing corresponding locking messages and data changes on
// the same paths through the roots guarantees a consistent view of variable
// updates."
//
// Each group's root manages its own queue lock; a cross-group critical
// section acquires one lock per involved group. Locks are always acquired
// in a fixed global order (ascending lock VarId), which makes deadlock
// impossible regardless of how sections overlap: the resource-ordering
// argument — a cycle in the wait-for graph would need some node to hold a
// higher-ordered lock while waiting for a lower one.
#pragma once

#include <vector>

#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "sync/gwc_lock.hpp"

namespace optsync::core {

class MultiGroupMutex {
 public:
  /// `locks` may live in any number of distinct groups. They are reordered
  /// into the global acquisition order internally.
  MultiGroupMutex(dsm::DsmSystem& sys, std::vector<dsm::VarId> locks);

  MultiGroupMutex(const MultiGroupMutex&) = delete;
  MultiGroupMutex& operator=(const MultiGroupMutex&) = delete;

  /// Acquires every lock, in global order. The caller must be a member of
  /// every involved group. Use as: co_await m.acquire(n).join();
  sim::Process acquire(dsm::NodeId n);

  /// Releases every lock, in reverse order.
  void release(dsm::NodeId n);

  /// True when node `n` holds all the locks.
  [[nodiscard]] bool held_by(dsm::NodeId n) const;

  [[nodiscard]] const std::vector<dsm::VarId>& locks() const {
    return ordered_;
  }

  struct Stats {
    std::uint64_t acquisitions = 0;
    sim::Duration total_acquire_ns = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  sim::Process acquire_impl(dsm::NodeId n);

  dsm::DsmSystem* sys_;
  std::vector<dsm::VarId> ordered_;
  std::vector<std::unique_ptr<sync::GwcQueueLock>> clients_;
  Stats stats_;
};

}  // namespace optsync::core
