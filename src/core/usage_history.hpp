// Lock usage-frequency history (paper §4).
//
// "The history frequency information can, as an example, be derived from a
// simple formula such as old = 0.95*old + 0.05*new, where old and new
// represent usage and 1.0 means 'lock held by another CPU'."
//
// A requester consults this estimate (together with the local lock copy) to
// decide between an optimistic and a regular request; the paper's example
// threshold is 0.30.
#pragma once

#include "simkern/assert.hpp"

namespace optsync::core {

class UsageHistory {
 public:
  /// `decay` is the weight of the old estimate (the paper's 0.95).
  explicit UsageHistory(double decay = 0.95) : decay_(decay) {
    OPTSYNC_EXPECT(decay >= 0.0 && decay <= 1.0);
  }

  /// Folds one observation in: 1.0 = "lock held by another CPU",
  /// 0.0 = "lock free". Fractional values are allowed for aggregated
  /// observations.
  void observe(double busy) {
    OPTSYNC_EXPECT(busy >= 0.0 && busy <= 1.0);
    value_ = decay_ * value_ + (1.0 - decay_) * busy;
  }

  /// Current busyness estimate in [0, 1].
  [[nodiscard]] double value() const { return value_; }

  /// True when the estimate exceeds `threshold` — take the regular path.
  [[nodiscard]] bool indicates_usage(double threshold) const {
    return value_ > threshold;
  }

  void reset() { value_ = 0.0; }

 private:
  double decay_;
  double value_ = 0.0;
};

}  // namespace optsync::core
