// Rollback journal for optimistic critical sections (paper Fig. 4, 14-16).
//
// Before an optimistic execution alters anything, the prior values of all
// variables it will change are saved ("saved-" prefixed variables in the
// paper's compiler-generated code). On a failed speculation the journal
// restores them. Restoration uses DsmNode::poke — a purely local memory
// operation — because the group root already discarded the speculative
// writes, so there is nothing to undo remotely.
#pragma once

#include <functional>
#include <vector>

#include "dsm/node.hpp"
#include "dsm/types.hpp"

namespace optsync::core {

class RollbackJournal {
 public:
  /// Snapshots the current local values of `vars` on `node`.
  /// Precondition: the journal is empty (one speculation at a time).
  void snapshot(const dsm::DsmNode& node, const std::vector<dsm::VarId>& vars);

  /// Registers an extra save/restore pair for the section's local variables
  /// (the paper's saved_lcl_c). `save` runs immediately; `restore` runs on
  /// rollback.
  void add_local(std::function<void()> save, std::function<void()> restore);

  /// Restores all saved values onto `node` and clears the journal.
  void restore(dsm::DsmNode& node);

  /// Drops saved state without restoring (successful speculation).
  void discard();

  [[nodiscard]] bool empty() const {
    return shared_.empty() && local_restores_.empty();
  }
  [[nodiscard]] std::size_t shared_count() const { return shared_.size(); }

 private:
  struct Saved {
    dsm::VarId var;
    dsm::Word value;
  };
  std::vector<Saved> shared_;
  std::vector<std::function<void()>> local_restores_;
};

}  // namespace optsync::core
