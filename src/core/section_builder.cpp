#include "core/section_builder.hpp"

#include "simkern/assert.hpp"

namespace optsync::core {

Section SectionBuilder::build() const {
  OPTSYNC_EXPECT(body_ != nullptr);
  Section sec;
  sec.shared_writes = write_set_;
  if (!saves_.empty()) {
    sec.save_locals = [saves = saves_] {
      for (const auto& s : saves) s();
    };
    sec.restore_locals = [restores = restores_] {
      for (const auto& r : restores) r();
    };
  }
  sec.body = [sys = sys_, compute = compute_ns_,
              fn = body_](dsm::DsmNode& node) -> sim::Process {
    if (compute > 0) co_await sim::delay(sys->scheduler(), compute);
    fn(node);
  };
  return sec;
}

Section read_compute_write(dsm::DsmSystem& sys, dsm::VarId src, dsm::VarId dst,
                           sim::Duration compute_ns,
                           std::function<dsm::Word(dsm::Word)> f) {
  OPTSYNC_EXPECT(f != nullptr);
  Section sec;
  sec.shared_writes = {dst};
  sec.body = [&sys, src, dst, compute_ns,
              f = std::move(f)](dsm::DsmNode& node) -> sim::Process {
    const dsm::Word before = node.read(src);
    if (compute_ns > 0) co_await sim::delay(sys.scheduler(), compute_ns);
    node.write(dst, f(before));
  };
  return sec;
}

}  // namespace optsync::core
