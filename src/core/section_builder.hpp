// Section builders — the paper's compiler transformation as a library API.
//
// The paper has a compiler turn plain mutex code (Fig. 3) into the
// rollback-capable form (Fig. 4): collect the shared write-set, save local
// variables, make the body re-runnable. These helpers do that assembly for
// the common shapes so call sites stay as small as the paper's source
// fragment:
//
//   // lcl_c = shared_a + lcl_b + lcl_c;  shared_a = shared_a + lcl_c;
//   auto sec = core::SectionBuilder(sys)
//                  .writes(shared_a)
//                  .local(lcl_c)
//                  .compute_ns(1'500)
//                  .body([&](dsm::DsmNode& n) {
//                    lcl_c = n.read(shared_a) + lcl_b + lcl_c;
//                    n.write(shared_a, n.read(shared_a) + lcl_c);
//                  })
//                  .build();
//   co_await mux.execute(me, std::move(sec)).join();
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "core/optimistic_mutex.hpp"

namespace optsync::core {

class SectionBuilder {
 public:
  explicit SectionBuilder(dsm::DsmSystem& sys) : sys_(&sys) {}

  /// Adds shared variables the body writes (the rollback save list).
  SectionBuilder& writes(dsm::VarId v) {
    write_set_.push_back(v);
    return *this;
  }
  SectionBuilder& writes(std::initializer_list<dsm::VarId> vs) {
    // (Plain loop rather than vector::insert: GCC 12's inliner raises a
    // spurious -Wstringop-overflow on the initializer_list overload.)
    for (const dsm::VarId v : vs) write_set_.push_back(v);
    return *this;
  }

  /// Registers a local variable to save/restore across rollback
  /// (the paper's saved_lcl_c). May be called for several locals.
  template <class T>
  SectionBuilder& local(T& ref) {
    auto saved = std::make_shared<T>();
    saves_.push_back([&ref, saved] { *saved = ref; });
    restores_.push_back([&ref, saved] { ref = *saved; });
    return *this;
  }

  /// Simulated compute time of the section (charged before the writes).
  SectionBuilder& compute_ns(sim::Duration d) {
    compute_ns_ = d;
    return *this;
  }

  /// The section's reads/computes/writes, as a plain (non-coroutine)
  /// function; the builder wraps it with the compute delay. Must be
  /// re-runnable (it is re-invoked after a rollback).
  SectionBuilder& body(std::function<void(dsm::DsmNode&)> fn) {
    body_ = std::move(fn);
    return *this;
  }

  /// Assembles the Section. Precondition: body was set.
  [[nodiscard]] Section build() const;

 private:
  dsm::DsmSystem* sys_;
  std::vector<dsm::VarId> write_set_;
  std::vector<std::function<void()>> saves_;
  std::vector<std::function<void()>> restores_;
  sim::Duration compute_ns_ = 0;
  std::function<void(dsm::DsmNode&)> body_;
};

/// The exact Fig. 3 shape as a one-liner: read `src`, compute for
/// `compute_ns`, write `f(old)` back into `dst` (often dst == src).
Section read_compute_write(dsm::DsmSystem& sys, dsm::VarId src,
                           dsm::VarId dst, sim::Duration compute_ns,
                           std::function<dsm::Word(dsm::Word)> f);

}  // namespace optsync::core
