// Single-writer publication over GWC — the paper's §2 opening idiom.
//
// "Since writes are ordered, the case for one writer is simple; an ordinary
// variable can lock a data structure awaited by reader(s). If code on the
// writing processor finishes all data updates before unlocking the variable,
// all processors will see the same order of changes. Each processor can
// check its local lock to see whether the data is valid. Relocking while
// data is being read can trigger rereading to get consistent data values."
//
// This is a seqlock realized on eagershared variables: the writer bumps a
// version to odd (writing), streams the fields, then bumps it to the next
// even value. GWC's total order per group means every reader's local memory
// applies those writes in exactly that order, so the classic version-check
// protocol makes torn reads impossible — with zero reader-side traffic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsm/system.hpp"
#include "simkern/coro.hpp"

namespace optsync::core {

class PublishedRecord {
 public:
  /// Creates the version variable plus `fields` data variables in group
  /// `g`. Only node `writer` may publish.
  PublishedRecord(dsm::DsmSystem& sys, dsm::GroupId g, std::string name,
                  std::size_t fields, dsm::NodeId writer);

  PublishedRecord(const PublishedRecord&) = delete;
  PublishedRecord& operator=(const PublishedRecord&) = delete;

  /// Publishes a new value of the record (writer only).
  /// Precondition: values.size() == field_count().
  void publish(const std::vector<dsm::Word>& values);

  /// Publishes with `per_field_ns` of computation between field writes —
  /// a writer that produces the record incrementally. Readers observe a
  /// real "writing" window (odd version) and must retry through it.
  sim::Process publish_slowly(std::vector<dsm::Word> values,
                              sim::Duration per_field_ns);

  /// One consistency-checked read attempt from node `n`'s local memory.
  /// Returns nullopt when a publish is in flight locally (odd version or
  /// version changed mid-read) — the paper's "trigger rereading" case.
  [[nodiscard]] std::optional<std::vector<dsm::Word>> try_read(
      dsm::NodeId n) const;

  /// Retries until a consistent snapshot is available; waits on the local
  /// version variable between attempts (no network traffic — eagersharing
  /// delivers the fields unprompted).
  sim::Process read(dsm::NodeId n, std::vector<dsm::Word>* out);

  [[nodiscard]] std::size_t field_count() const { return fields_.size(); }
  [[nodiscard]] dsm::VarId version_var() const { return version_; }
  [[nodiscard]] dsm::NodeId writer() const { return writer_; }

  /// Version counter last published (even = quiescent).
  [[nodiscard]] dsm::Word current_version() const { return version_value_; }

  struct Stats {
    std::uint64_t publishes = 0;
    std::uint64_t clean_reads = 0;
    std::uint64_t retried_reads = 0;  ///< try_read returned nullopt
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  dsm::DsmSystem* sys_;
  dsm::NodeId writer_;
  dsm::VarId version_;
  std::vector<dsm::VarId> fields_;
  dsm::Word version_value_ = 0;
  mutable Stats stats_;
};

}  // namespace optsync::core
