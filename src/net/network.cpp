#include "net/network.hpp"

#include "simkern/assert.hpp"

namespace optsync::net {

void Network::send(NodeId src, NodeId dst, std::uint32_t bytes,
                   std::string_view tag, std::function<void()> on_delivery) {
  send_hops(src, dst, topo_->hop_count(src, dst), bytes, tag,
            std::move(on_delivery));
}

void Network::send_hops(NodeId src, NodeId dst, unsigned hops,
                        std::uint32_t bytes, std::string_view tag,
                        std::function<void()> on_delivery) {
  OPTSYNC_EXPECT(on_delivery != nullptr);
  stats_.messages += 1;
  stats_.bytes += bytes;
  stats_.hop_bytes += static_cast<std::uint64_t>(bytes) * hops;
  const sim::Time sent_at = sched_->now();
  const sim::Duration d = link_.delay(hops, bytes);
  if (trace_) {
    // Capture trace data now; emit at delivery so lines appear in arrival
    // order, which is what the Fig. 7 trace bench wants to show.
    sched_->after(d, [this, sent_at, src, dst, bytes, tag,
                      cb = std::move(on_delivery)] {
      trace_(MessageTrace{sent_at, sched_->now(), src, dst, bytes, tag});
      cb();
    });
  } else {
    sched_->after(d, std::move(on_delivery));
  }
}

}  // namespace optsync::net
