#include "net/network.hpp"

#include <algorithm>

#include "simkern/assert.hpp"

namespace optsync::net {

std::string_view delivery_kind_name(DeliveryKind k) {
  switch (k) {
    case DeliveryKind::kNormal:
      return "normal";
    case DeliveryKind::kRetransmit:
      return "rexmit";
    case DeliveryKind::kDuplicate:
      return "dup";
    case DeliveryKind::kDupSuppressed:
      return "dup-suppressed";
    case DeliveryKind::kInjectedDrop:
      return "dropped";
    case DeliveryKind::kExpired:
      return "expired";
    case DeliveryKind::kRevived:
      return "revived";
  }
  return "?";
}

void Network::send(NodeId src, NodeId dst, std::uint32_t bytes,
                   std::string_view tag, DeliveryFn on_delivery) {
  send_hops(src, dst, topo_->hop_count(src, dst), bytes, tag,
            std::move(on_delivery));
}

void Network::deliver_at(sim::Duration delay, MessageTrace trace,
                         DeliveryFn on_delivery) {
  if (trace_ || !observers_.empty()) {
    // Capture trace data now; emit at delivery so lines appear in arrival
    // order, which is what the Fig. 7 trace bench wants to show.
    sched_->after(delay, [this, trace, cb = std::move(on_delivery)]() mutable {
      trace.delivered_at = sched_->now();
      emit_trace(trace);
      cb();
    });
  } else {
    sched_->after(delay, std::move(on_delivery));
  }
}

void Network::send_hops(NodeId src, NodeId dst, unsigned hops,
                        std::uint32_t bytes, std::string_view tag,
                        DeliveryFn on_delivery, DeliveryKind kind) {
  OPTSYNC_EXPECT(on_delivery != nullptr);
  stats_.messages += 1;
  stats_.bytes += bytes;
  stats_.hop_bytes += static_cast<std::uint64_t>(bytes) * hops;
  const sim::Time sent_at = sched_->now();
  const sim::Duration d = link_.delay(hops, bytes);

  FaultAction act;
  if (fault_) {
    act = fault_(MessageMeta{src, dst, hops, bytes, tag, sent_at, d, kind});
  }
  if (act.drop) {
    stats_.drops_injected += 1;
    emit_trace(MessageTrace{sent_at, sent_at + d, src, dst, bytes, tag,
                            DeliveryKind::kInjectedDrop});
    return;
  }
  if (act.extra_delay > 0) {
    stats_.delays_injected += 1;
    stats_.max_extra_delay_ns =
        std::max(stats_.max_extra_delay_ns, act.extra_delay);
  }
  const MessageTrace trace{sent_at, 0, src, dst, bytes, tag, kind};
  for (unsigned i = 0; i < act.duplicates; ++i) {
    stats_.dups_injected += 1;
    MessageTrace dup_trace = trace;
    dup_trace.kind = DeliveryKind::kDuplicate;
    deliver_at(d + act.extra_delay + act.dup_extra_delay, dup_trace,
               on_delivery);  // copies the callback; the payload arrives twice
  }
  deliver_at(d + act.extra_delay, trace, std::move(on_delivery));
}

}  // namespace optsync::net
