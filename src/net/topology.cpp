#include "net/topology.hpp"

#include <bit>
#include <cmath>

#include "simkern/assert.hpp"

namespace optsync::net {

// ---------------------------------------------------------------- FullyConn
FullyConnected::FullyConnected(std::size_t n) : n_(n) { OPTSYNC_EXPECT(n >= 1); }

std::vector<NodeId> FullyConnected::neighbors(NodeId n) const {
  OPTSYNC_EXPECT(n < n_);
  std::vector<NodeId> out;
  out.reserve(n_ - 1);
  for (NodeId i = 0; i < n_; ++i)
    if (i != n) out.push_back(i);
  return out;
}

unsigned FullyConnected::hop_count(NodeId a, NodeId b) const {
  OPTSYNC_EXPECT(a < n_ && b < n_);
  return a == b ? 0u : 1u;
}

std::string FullyConnected::name() const {
  return "fully-connected " + std::to_string(n_);
}

// --------------------------------------------------------------------- Ring
Ring::Ring(std::size_t n) : n_(n) { OPTSYNC_EXPECT(n >= 1); }

std::vector<NodeId> Ring::neighbors(NodeId n) const {
  OPTSYNC_EXPECT(n < n_);
  if (n_ == 1) return {};
  if (n_ == 2) return {static_cast<NodeId>(1 - n)};
  const auto left = static_cast<NodeId>((n + n_ - 1) % n_);
  const auto right = static_cast<NodeId>((n + 1) % n_);
  return {left, right};
}

unsigned Ring::hop_count(NodeId a, NodeId b) const {
  OPTSYNC_EXPECT(a < n_ && b < n_);
  const auto d = static_cast<unsigned>(a > b ? a - b : b - a);
  return std::min(d, static_cast<unsigned>(n_) - d);
}

std::string Ring::name() const { return "ring " + std::to_string(n_); }

// -------------------------------------------------------------- MeshTorus2D
MeshTorus2D::MeshTorus2D(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  OPTSYNC_EXPECT(rows >= 1 && cols >= 1);
}

MeshTorus2D MeshTorus2D::near_square(std::size_t n) {
  OPTSYNC_EXPECT(n >= 1);
  std::size_t best = 1;
  for (std::size_t r = 1; r * r <= n; ++r) {
    if (n % r == 0) best = r;
  }
  return MeshTorus2D(best, n / best);
}

MeshTorus2D MeshTorus2D::compact(std::size_t n) {
  OPTSYNC_EXPECT(n >= 1);
  std::size_t rows = 1;
  while ((rows + 1) * (rows + 1) <= n) ++rows;
  const std::size_t cols = (n + rows - 1) / rows;
  return MeshTorus2D(rows, cols);
}

std::vector<NodeId> MeshTorus2D::neighbors(NodeId n) const {
  OPTSYNC_EXPECT(n < size());
  const std::size_t r = n / cols_;
  const std::size_t c = n % cols_;
  std::vector<NodeId> out;
  auto add = [&](std::size_t rr, std::size_t cc) {
    const auto id = static_cast<NodeId>(rr * cols_ + cc);
    if (id != n) out.push_back(id);
  };
  if (rows_ > 1) {
    add((r + rows_ - 1) % rows_, c);
    if (rows_ > 2) add((r + 1) % rows_, c);
  }
  if (cols_ > 1) {
    add(r, (c + cols_ - 1) % cols_);
    if (cols_ > 2) add(r, (c + 1) % cols_);
  }
  return out;
}

unsigned MeshTorus2D::hop_count(NodeId a, NodeId b) const {
  OPTSYNC_EXPECT(a < size() && b < size());
  const auto wrap_dist = [](std::size_t x, std::size_t y, std::size_t dim) {
    const std::size_t d = x > y ? x - y : y - x;
    return static_cast<unsigned>(std::min(d, dim - d));
  };
  const std::size_t ra = a / cols_, ca = a % cols_;
  const std::size_t rb = b / cols_, cb = b % cols_;
  return wrap_dist(ra, rb, rows_) + wrap_dist(ca, cb, cols_);
}

std::string MeshTorus2D::name() const {
  return "mesh-torus " + std::to_string(rows_) + "x" + std::to_string(cols_);
}

// ---------------------------------------------------------------- Hypercube
Hypercube::Hypercube(std::size_t n) : n_(n) {
  OPTSYNC_EXPECT(n >= 1 && std::has_single_bit(n));
  dims_ = static_cast<unsigned>(std::bit_width(n) - 1);
}

std::vector<NodeId> Hypercube::neighbors(NodeId n) const {
  OPTSYNC_EXPECT(n < n_);
  std::vector<NodeId> out;
  out.reserve(dims_);
  for (unsigned d = 0; d < dims_; ++d) out.push_back(n ^ (1u << d));
  return out;
}

unsigned Hypercube::hop_count(NodeId a, NodeId b) const {
  OPTSYNC_EXPECT(a < n_ && b < n_);
  return static_cast<unsigned>(std::popcount(a ^ b));
}

std::string Hypercube::name() const {
  return "hypercube " + std::to_string(n_);
}

// ------------------------------------------------------------------ factory
std::unique_ptr<Topology> make_topology(TopologyKind kind, std::size_t n) {
  switch (kind) {
    case TopologyKind::kFullyConnected:
      return std::make_unique<FullyConnected>(n);
    case TopologyKind::kRing:
      return std::make_unique<Ring>(n);
    case TopologyKind::kMeshTorus:
      return std::make_unique<MeshTorus2D>(MeshTorus2D::near_square(n));
    case TopologyKind::kHypercube:
      return std::make_unique<Hypercube>(n);
  }
  OPTSYNC_ENSURE(false && "unreachable: unknown TopologyKind");
  return nullptr;
}

}  // namespace optsync::net
