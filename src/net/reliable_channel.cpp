#include "net/reliable_channel.hpp"

#include <algorithm>
#include <cmath>

#include "simkern/assert.hpp"

namespace optsync::net {

std::size_t ReliableChannel::in_flight() const {
  std::size_t n = 0;
  for (const auto& [k, f] : flows_) n += f.packets.size();
  return n;
}

void ReliableChannel::send(NodeId src, NodeId dst, unsigned hops,
                           std::uint32_t bytes, std::string_view tag,
                           DeliveryFn on_delivery) {
  OPTSYNC_EXPECT(on_delivery != nullptr);
  if (src == dst) {
    // Interface loopback: never crosses the fiber, cannot be lost, and the
    // fault layer never touches it. No sequencing or ack overhead.
    net_->send_hops(src, dst, hops, bytes, tag, std::move(on_delivery));
    return;
  }
  const FlowKey k = key(src, dst);
  Flow& f = flows_[k];
  f.hops = hops;
  const std::uint64_t seq = f.next_seq++;
  Packet& pkt = f.packets[seq];
  pkt.hops = hops;
  pkt.bytes = bytes;
  pkt.tag = tag;
  pkt.on_delivery = std::move(on_delivery);
  pkt.first_sent = net_->scheduler().now();
  stats_.data_packets += 1;
  transmit(k, seq, DeliveryKind::kNormal);
}

void ReliableChannel::transmit(FlowKey k, std::uint64_t seq,
                               DeliveryKind kind) {
  Flow& f = flows_[k];
  const auto it = f.packets.find(seq);
  OPTSYNC_ENSURE(it != f.packets.end());
  const Packet& pkt = it->second;

  // Piggybacking: if this end owes the destination a cumulative ack for the
  // reverse-direction flow, fold it into this packet's header for free. The
  // ack value is captured at transmit time — a retransmission of this packet
  // carries a fresh (possibly larger) cumulative ack. If the packet is lost
  // the piggybacked ack is lost with it; recovery is the sender's normal
  // retransmit, whose duplicate triggers an immediate re-ack.
  if (cfg_.ack_delay_ns > 0) {
    const auto rit = flows_.find(reverse(k));
    if (rit != flows_.end() && rit->second.ack_pending) {
      Flow& rf = rit->second;
      rf.ack_pending = false;  // the armed timer sees this and stays silent
      const std::uint64_t next_expected = rf.next_release;
      const FlowKey rk = reverse(k);
      stats_.acks_piggybacked += 1;
      net_->send_hops(key_src(k), key_dst(k), pkt.hops, pkt.bytes, pkt.tag,
                      [this, k, seq, rk, next_expected] {
                        on_ack(rk, next_expected);
                        on_data(k, seq);
                      },
                      kind);
      arm_timer(k, seq);
      return;
    }
  }

  net_->send_hops(key_src(k), key_dst(k), pkt.hops, pkt.bytes, pkt.tag,
                  [this, k, seq] { on_data(k, seq); }, kind);
  arm_timer(k, seq);
}

void ReliableChannel::arm_timer(FlowKey k, std::uint64_t seq) {
  Flow& f = flows_[k];
  Packet& pkt = f.packets.at(seq);
  const double scaled = static_cast<double>(cfg_.rto_ns) *
                        std::pow(cfg_.backoff, pkt.attempts);
  const auto rto = std::min<sim::Duration>(
      cfg_.max_rto_ns, static_cast<sim::Duration>(scaled));
  pkt.timer =
      net_->scheduler().after(rto, [this, k, seq] { on_timeout(k, seq); });
}

void ReliableChannel::on_timeout(FlowKey k, std::uint64_t seq) {
  const auto fit = flows_.find(k);
  if (fit == flows_.end()) return;
  const auto it = fit->second.packets.find(seq);
  if (it == fit->second.packets.end()) return;  // acked; timer raced the ack
  Packet& pkt = it->second;
  pkt.timer = 0;
  if (pkt.attempts >= cfg_.max_retransmits) {
    // Cap hit: abandon. The packet stays in the map (visible through
    // in_flight()) so a stuck simulation is diagnosable, not silent. A later
    // ack naming this seq as next-expected revives it (see on_ack): the
    // receiver is demonstrably alive and still waiting on the gap.
    stats_.expirations += 1;
    pkt.expired = true;
    const sim::Time now = net_->scheduler().now();
    net_->emit_trace(MessageTrace{pkt.first_sent, now, key_src(k), key_dst(k),
                                  pkt.bytes, pkt.tag, DeliveryKind::kExpired});
    return;
  }
  pkt.attempts += 1;
  stats_.retransmits += 1;
  transmit(k, seq, DeliveryKind::kRetransmit);
}

void ReliableChannel::on_data(FlowKey k, std::uint64_t seq) {
  Flow& f = flows_[k];
  const auto it = f.packets.find(seq);
  const bool already_released =
      seq < f.next_release || it == f.packets.end() ||
      (it != f.packets.end() && it->second.received);
  if (already_released) {
    // A retransmission raced the original (or an injected duplicate):
    // suppress, but re-ack so the sender stops retransmitting.
    stats_.dup_suppressed += 1;
    const sim::Time now = net_->scheduler().now();
    MessageTrace t{now, now, key_src(k), key_dst(k), 0, "rel-dup",
                   DeliveryKind::kDupSuppressed};
    if (it != f.packets.end()) {
      t.bytes = it->second.bytes;
      t.tag = it->second.tag;
      t.sent_at = it->second.first_sent;
    }
    net_->emit_trace(t);
    send_ack(k);
    return;
  }

  it->second.received = true;
  if (seq != f.next_release) {
    // A gap precedes this packet (its predecessor was dropped or delayed
    // past it): hold until the retransmission fills the gap.
    stats_.out_of_order += 1;
    send_ack(k);
    return;
  }

  // Release the contiguous prefix in order, exactly once. Callbacks may
  // reenter send() on this channel (sequenced updates fan back out through
  // the root), so re-find the packet each iteration.
  while (true) {
    const auto rit = f.packets.find(f.next_release);
    if (rit == f.packets.end() || !rit->second.received ||
        !rit->second.on_delivery) {
      break;
    }
    auto cb = std::move(rit->second.on_delivery);
    rit->second.on_delivery = nullptr;
    const sim::Duration delay =
        net_->scheduler().now() - rit->second.first_sent;
    stats_.max_delivery_delay_ns =
        std::max(stats_.max_delivery_delay_ns, delay);
    f.next_release += 1;
    cb();
  }
  note_ack_owed(k);
}

void ReliableChannel::note_ack_owed(FlowKey k) {
  if (cfg_.ack_delay_ns == 0) {
    send_ack(k);
    return;
  }
  // Delayed ack: give a reverse-direction packet ack_delay_ns to depart and
  // carry the cumulative ack for free. The timer guarantees the sender is
  // never starved of acks on a one-way flow — a standalone ack goes out at
  // the deadline if nothing piggybacked it first.
  Flow& f = flows_[k];
  f.ack_pending = true;
  if (f.ack_timer == 0) {
    f.ack_timer = net_->scheduler().after(cfg_.ack_delay_ns, [this, k] {
      Flow& fl = flows_[k];
      fl.ack_timer = 0;
      if (fl.ack_pending) send_ack(k);
    });
  }
}

void ReliableChannel::send_ack(FlowKey k) {
  Flow& f = flows_[k];
  f.ack_pending = false;
  if (f.ack_timer != 0) {
    net_->scheduler().cancel(f.ack_timer);
    f.ack_timer = 0;
  }
  // The ack carries next_release verbatim — the receiver's next expected
  // sequence. With 0-based sequences this encodes "nothing released yet" as
  // a plain 0; the old `next_release - 1` form wrapped to UINT64_MAX in that
  // state and erased every in-flight packet, including the dropped one.
  const std::uint64_t next_expected = f.next_release;
  stats_.acks_sent += 1;
  // Acks travel the reverse path and are just as attackable as data: a
  // lost ack means a retransmission that the receiver will dedup.
  net_->send_hops(key_dst(k), key_src(k), f.hops, cfg_.ack_bytes, "rel-ack",
                  [this, k, next_expected] { on_ack(k, next_expected); });
}

void ReliableChannel::on_ack(FlowKey k, std::uint64_t next_expected) {
  const auto fit = flows_.find(k);
  if (fit == flows_.end()) return;
  Flow& f = fit->second;
  while (!f.packets.empty() && f.packets.begin()->first < next_expected) {
    Packet& pkt = f.packets.begin()->second;
    if (pkt.expired) {
      // Abandoned at the cap, yet the cumulative ack proves a copy got
      // through (a delayed duplicate, or a retransmission whose ack was
      // lost). Settle it without asserting — the released-state invariant
      // below only holds for packets the sender was still tracking.
      stats_.expired_acked += 1;
    } else {
      OPTSYNC_ENSURE(pkt.received && !pkt.on_delivery);
    }
    if (pkt.timer != 0) net_->scheduler().cancel(pkt.timer);
    f.packets.erase(f.packets.begin());
  }
  // Revival: the receiver names the head-of-line packet it is still waiting
  // for. If the sender had abandoned exactly that packet, the flow is wedged
  // — nothing will ever retransmit it and every later packet stalls in the
  // receiver's out-of-order buffer. The ack is proof of a live path, so put
  // the packet back on the state machine with a fresh backoff budget.
  const auto head = f.packets.find(next_expected);
  if (head != f.packets.end() && head->second.expired &&
      !head->second.received) {
    Packet& pkt = head->second;
    pkt.expired = false;
    pkt.attempts = 0;
    stats_.revivals += 1;
    stats_.retransmits += 1;
    transmit(k, next_expected, DeliveryKind::kRevived);
  }
}

}  // namespace optsync::net
