// Link cost model — the paper's physical constants.
//
// §4.1: "each data sharing hop in a square mesh torus takes 200 ns, and each
// point to point fiber link is 1 gigabit/sec". Messages are cut-through
// routed: one serialization at the source plus a per-hop switching latency.
#pragma once

#include <cstdint>

#include "simkern/time.hpp"

namespace optsync::net {

struct LinkModel {
  /// Per-hop switching/propagation latency.
  sim::Duration hop_latency_ns = 200;

  /// Serialization cost per byte. 1 Gbit/s = 8 ns per byte.
  sim::Duration ns_per_byte = 8;

  /// Fixed per-message software/interface overhead at the source.
  /// The Sesame interface intercepts writes in hardware, so this is tiny.
  sim::Duration fixed_overhead_ns = 0;

  /// End-to-end delay of a `bytes`-byte message crossing `hops` hops.
  /// hops == 0 (self-delivery) still pays serialization + overhead, which
  /// models the interface loopback a root node uses for its own group.
  [[nodiscard]] constexpr sim::Duration delay(unsigned hops,
                                              std::uint32_t bytes) const {
    return fixed_overhead_ns + static_cast<sim::Duration>(hops) * hop_latency_ns +
           static_cast<sim::Duration>(bytes) * ns_per_byte;
  }

  /// The paper's configuration.
  static constexpr LinkModel paper() { return LinkModel{}; }

  /// Zero network delay — the "maximum speedup" bound in Figs. 2 and 8.
  static constexpr LinkModel zero() { return LinkModel{0, 0, 0}; }
};

/// Compute cost model for simulated CPUs (paper §4.1: 33 MFLOPS peak,
/// 400 MB/s local memory bandwidth).
struct CpuModel {
  double mflops = 33.0;
  double mem_mb_per_s = 400.0;

  /// Time to execute `flops` floating-point operations at peak speed.
  [[nodiscard]] sim::Duration flops_time(std::uint64_t flops) const {
    return static_cast<sim::Duration>(
        static_cast<double>(flops) * 1'000.0 / mflops);
  }

  /// Time to stream `bytes` through local memory (MB = 1e6 bytes, so
  /// 400 MB/s is exactly 2.5 ns per byte).
  [[nodiscard]] sim::Duration mem_time(std::uint64_t bytes) const {
    return static_cast<sim::Duration>(
        static_cast<double>(bytes) * 1'000.0 / mem_mb_per_s);
  }

  static constexpr CpuModel paper() { return CpuModel{}; }
};

}  // namespace optsync::net
