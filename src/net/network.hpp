// Message delivery engine: topology + link model + scheduler.
//
// The network is connectionless and reliable (Sesame's tree protocol handles
// retransmission in hardware; we model the common case of loss-free fiber,
// as the paper's simulations do). Delivery order between a fixed (src, dst)
// pair is FIFO because delays are deterministic per message size and the
// scheduler breaks ties by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "net/link_model.hpp"
#include "net/topology.hpp"
#include "simkern/scheduler.hpp"

namespace optsync::net {

/// Counters exposed for benches and the EXPERIMENTS tables.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hop_bytes = 0;  ///< bytes weighted by hops travelled
};

/// One observed message; emitted to the trace hook when installed.
struct MessageTrace {
  sim::Time sent_at;
  sim::Time delivered_at;
  NodeId src;
  NodeId dst;
  std::uint32_t bytes;
  std::string_view tag;  ///< protocol-level label, e.g. "lock-req"
};

class Network {
 public:
  Network(sim::Scheduler& sched, const Topology& topo, LinkModel link)
      : sched_(&sched), topo_(&topo), link_(link) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const LinkModel& link() const { return link_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// End-to-end latency from src to dst for a message of `bytes`.
  [[nodiscard]] sim::Duration latency(NodeId src, NodeId dst,
                                      std::uint32_t bytes) const {
    return link_.delay(topo_->hop_count(src, dst), bytes);
  }

  /// Latency across a pre-computed number of hops (tree-edge delivery).
  [[nodiscard]] sim::Duration latency_hops(unsigned hops,
                                           std::uint32_t bytes) const {
    return link_.delay(hops, bytes);
  }

  /// Sends a message; `on_delivery` runs at the arrival time.
  /// `tag` labels the message for tracing (must outlive the delivery —
  /// callers pass string literals).
  void send(NodeId src, NodeId dst, std::uint32_t bytes, std::string_view tag,
            std::function<void()> on_delivery);

  /// Sends across an explicit hop count (used for tree edges whose physical
  /// length differs from the src-dst shortest path).
  void send_hops(NodeId src, NodeId dst, unsigned hops, std::uint32_t bytes,
                 std::string_view tag, std::function<void()> on_delivery);

  /// Installs a hook observing every delivery (replaces any previous hook).
  using TraceHook = std::function<void(const MessageTrace&)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

 private:
  sim::Scheduler* sched_;
  const Topology* topo_;
  LinkModel link_;
  NetworkStats stats_;
  TraceHook trace_;
};

}  // namespace optsync::net
