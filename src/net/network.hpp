// Message delivery engine: topology + link model + scheduler.
//
// By default the network is connectionless and reliable (Sesame's tree
// protocol handles retransmission in hardware; we model the common case of
// loss-free fiber, as the paper's simulations do). Delivery order between a
// fixed (src, dst) pair is FIFO because delays are deterministic per message
// size and the scheduler breaks ties by insertion order.
//
// That happy path can be attacked: a fault hook (installed by
// faults::FaultInjector) inspects every send and may drop it, duplicate it,
// or add per-message delay — which breaks the FIFO property on purpose.
// Protocols that must survive that run on top of net::ReliableChannel, the
// explicit software model of the "reliable, root-sequenced" delivery the
// paper attributes to hardware retransmission.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "net/link_model.hpp"
#include "net/topology.hpp"
#include "simkern/scheduler.hpp"

namespace optsync::net {

/// Delivery callbacks ride scheduler events; the small-buffer type keeps
/// per-message sends allocation-free. Must be copy-constructible closures —
/// the fault injector duplicates messages by copying the callback.
using DeliveryFn = sim::Scheduler::Callback;

/// Counters exposed for benches and the EXPERIMENTS tables.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hop_bytes = 0;  ///< bytes weighted by hops travelled
  // Fault-injection counters (zero unless a fault hook is installed).
  std::uint64_t drops_injected = 0;   ///< messages destroyed by the injector
  std::uint64_t dups_injected = 0;    ///< extra copies created by the injector
  std::uint64_t delays_injected = 0;  ///< messages given extra delay
  sim::Duration max_extra_delay_ns = 0;  ///< largest injected delay
};

/// What kind of delivery a trace record describes. kNormal covers the
/// loss-free fast path; the other kinds only occur under fault injection
/// and/or the reliable-channel layer.
enum class DeliveryKind : std::uint8_t {
  kNormal = 0,
  kRetransmit,     ///< a ReliableChannel retransmission arriving
  kDuplicate,      ///< an injector-created extra copy arriving
  kDupSuppressed,  ///< arrival discarded by ReliableChannel dedup
  kInjectedDrop,   ///< message destroyed in flight by the injector
  kExpired,        ///< packet abandoned at the retransmit cap
  kRevived,        ///< abandoned packet retransmitted after an ack proved
                   ///< the receiver is still waiting on it
};

/// Short label for trace output ("normal", "rexmit", ...).
[[nodiscard]] std::string_view delivery_kind_name(DeliveryKind k);

/// One observed message; emitted to the trace hook when installed.
struct MessageTrace {
  sim::Time sent_at;
  sim::Time delivered_at;  ///< for kInjectedDrop: when it would have arrived
  NodeId src;
  NodeId dst;
  std::uint32_t bytes;
  std::string_view tag;  ///< protocol-level label, e.g. "lock-req"
  DeliveryKind kind = DeliveryKind::kNormal;
};

/// What a fault hook sees about a message at send time.
struct MessageMeta {
  NodeId src;
  NodeId dst;
  unsigned hops;
  std::uint32_t bytes;
  std::string_view tag;
  sim::Time sent_at;
  sim::Duration base_delay;  ///< fault-free end-to-end latency
  DeliveryKind kind;         ///< kNormal or kRetransmit
};

/// What the fault hook decided for one message. Defaults mean "deliver
/// normally". A duplicate delivers the same payload a second time at
/// base_delay + extra_delay + dup_extra_delay.
struct FaultAction {
  bool drop = false;
  unsigned duplicates = 0;
  sim::Duration extra_delay = 0;
  sim::Duration dup_extra_delay = 0;
};

class Network {
 public:
  Network(sim::Scheduler& sched, const Topology& topo, LinkModel link)
      : sched_(&sched), topo_(&topo), link_(link) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const LinkModel& link() const { return link_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

  /// End-to-end latency from src to dst for a message of `bytes`.
  [[nodiscard]] sim::Duration latency(NodeId src, NodeId dst,
                                      std::uint32_t bytes) const {
    return link_.delay(topo_->hop_count(src, dst), bytes);
  }

  /// Latency across a pre-computed number of hops (tree-edge delivery).
  [[nodiscard]] sim::Duration latency_hops(unsigned hops,
                                           std::uint32_t bytes) const {
    return link_.delay(hops, bytes);
  }

  /// Sends a message; `on_delivery` runs at the arrival time.
  /// `tag` labels the message for tracing (must outlive the delivery —
  /// callers pass string literals).
  void send(NodeId src, NodeId dst, std::uint32_t bytes, std::string_view tag,
            DeliveryFn on_delivery);

  /// Sends across an explicit hop count (used for tree edges whose physical
  /// length differs from the src-dst shortest path). `kind` distinguishes
  /// retransmissions for tracing; fresh sends leave it kNormal.
  void send_hops(NodeId src, NodeId dst, unsigned hops, std::uint32_t bytes,
                 std::string_view tag, DeliveryFn on_delivery,
                 DeliveryKind kind = DeliveryKind::kNormal);

  /// Accounts `n` equal-size messages fanned out across `hops` each (one
  /// multicast hop-class) without scheduling anything. The caller owns the
  /// delivery event and per-member trace emission — see the hop-class fast
  /// path in DsmSystem::multicast_frame, which schedules one scheduler
  /// event per hop-class instead of one per member.
  void account_sends(std::size_t n, unsigned hops, std::uint32_t bytes) {
    stats_.messages += n;
    stats_.bytes += static_cast<std::uint64_t>(bytes) * n;
    stats_.hop_bytes += static_cast<std::uint64_t>(bytes) * hops * n;
  }

  /// True when some hook or observer wants a record of every delivery.
  [[nodiscard]] bool observing() const {
    return trace_ != nullptr || !observers_.empty();
  }

  /// Installs a hook observing every delivery (replaces any previous hook).
  using TraceHook = std::function<void(const MessageTrace&)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// Adds an additional observer without displacing the primary hook. The
  /// flight recorder taps the network this way so tests that install their
  /// own trace hook keep working alongside it.
  void add_trace_observer(TraceHook hook) {
    observers_.push_back(std::move(hook));
  }

  /// Emits a record straight to the trace hook. Used by layered protocols
  /// to report events the raw network cannot see (duplicate suppression).
  void emit_trace(const MessageTrace& t) {
    if (trace_) trace_(t);
    for (const auto& obs : observers_) obs(t);
  }

  /// Installs the fault hook consulted on every send (nullptr removes it).
  /// Owned by faults::FaultInjector; plain callers never touch this.
  using FaultHook = std::function<FaultAction(const MessageMeta&)>;
  void set_fault_hook(FaultHook hook) { fault_ = std::move(hook); }
  [[nodiscard]] bool fault_hook_installed() const { return fault_ != nullptr; }

 private:
  void deliver_at(sim::Duration delay, MessageTrace trace,
                  DeliveryFn on_delivery);

  sim::Scheduler* sched_;
  const Topology* topo_;
  LinkModel link_;
  NetworkStats stats_;
  TraceHook trace_;
  std::vector<TraceHook> observers_;
  FaultHook fault_;
};

}  // namespace optsync::net
