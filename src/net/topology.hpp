// Interconnect topologies.
//
// The paper's evaluation (§4.1) assumes a square mesh torus with 200 ns per
// hop and 1 Gbit/s point-to-point fiber links. The topology abstraction
// provides neighbor sets (for spanning-tree construction) and shortest-path
// hop counts (for the link cost model); additional topologies are used in
// tests and the group-size ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace optsync::net {

/// Identifies a node (processor + Sesame sharing interface) in the network.
using NodeId = std::uint32_t;

/// Abstract interconnect: a connected undirected graph of nodes.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of nodes; ids are dense in [0, size()).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Direct neighbors of `n`, in a deterministic order.
  [[nodiscard]] virtual std::vector<NodeId> neighbors(NodeId n) const = 0;

  /// Shortest-path distance in hops (0 when a == b).
  [[nodiscard]] virtual unsigned hop_count(NodeId a, NodeId b) const = 0;

  /// Human-readable description, e.g. "mesh-torus 8x16".
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Every node one hop from every other; the degenerate small-network case.
class FullyConnected final : public Topology {
 public:
  explicit FullyConnected(std::size_t n);
  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const override;
  [[nodiscard]] unsigned hop_count(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t n_;
};

/// Bidirectional ring.
class Ring final : public Topology {
 public:
  explicit Ring(std::size_t n);
  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const override;
  [[nodiscard]] unsigned hop_count(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t n_;
};

/// 2-D mesh with wrap-around links in both dimensions (a torus).
/// Node id = row * cols + col; distance is the sum of per-dimension
/// wrap-aware distances (dimension-order routing).
class MeshTorus2D final : public Topology {
 public:
  MeshTorus2D(std::size_t rows, std::size_t cols);

  /// Builds the most nearly square torus with exactly `n` nodes
  /// (rows * cols == n, rows the largest divisor of n with rows <= sqrt(n)).
  /// A prime n therefore degenerates to a 1 x n ring, matching how a real
  /// installation would be laid out.
  static MeshTorus2D near_square(std::size_t n);

  /// Builds the smallest near-square torus with at least `n` slots
  /// (rows = floor(sqrt(n)), cols = ceil(n / rows)). Workloads that need
  /// exactly n processors use node ids [0, n) and leave the remainder idle
  /// — how a real installation lays out an awkward count like 129 rather
  /// than stretching to a 3 x 43 grid.
  static MeshTorus2D compact(std::size_t n);

  [[nodiscard]] std::size_t size() const override { return rows_ * cols_; }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const override;
  [[nodiscard]] unsigned hop_count(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
};

/// Binary hypercube; size must be a power of two.
class Hypercube final : public Topology {
 public:
  explicit Hypercube(std::size_t n);
  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const override;
  [[nodiscard]] unsigned hop_count(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t n_;
  unsigned dims_;
};

/// Named topology kinds for command-line / bench configuration.
enum class TopologyKind { kFullyConnected, kRing, kMeshTorus, kHypercube };

/// Factory covering all kinds; mesh picks the near-square shape.
std::unique_ptr<Topology> make_topology(TopologyKind kind, std::size_t n);

}  // namespace optsync::net
