#include "net/spanning_tree.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "simkern/assert.hpp"

namespace optsync::net {

namespace {
std::unordered_map<NodeId, std::size_t> build_index(
    const std::vector<NodeId>& members) {
  std::unordered_map<NodeId, std::size_t> idx;
  idx.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const bool inserted = idx.emplace(members[i], i).second;
    OPTSYNC_EXPECT(inserted);  // duplicate member ids are a caller bug
  }
  return idx;
}
}  // namespace

SpanningTree::SpanningTree(const Topology& topo, std::vector<NodeId> members,
                           NodeId root)
    : members_(std::move(members)), root_(root) {
  OPTSYNC_EXPECT(!members_.empty());
  index_ = build_index(members_);
  const auto& idx = index_;
  OPTSYNC_EXPECT(idx.contains(root_));

  const std::size_t m = members_.size();
  parent_.assign(m, root_);
  children_.assign(m, {});
  depth_.assign(m, 0);
  hops_to_root_.assign(m, 0);
  edge_hops_.assign(m, 0);

  // BFS over topology edges restricted to member nodes.
  std::vector<bool> visited(m, false);
  std::deque<NodeId> frontier;
  frontier.push_back(root_);
  visited[idx.at(root_)] = true;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    const std::size_t ci = idx.at(cur);
    for (const NodeId nb : topo.neighbors(cur)) {
      const auto it = idx.find(nb);
      if (it == idx.end() || visited[it->second]) continue;
      visited[it->second] = true;
      parent_[it->second] = cur;
      edge_hops_[it->second] = 1;
      depth_[it->second] = depth_[ci] + 1;
      hops_to_root_[it->second] = hops_to_root_[ci] + 1;
      children_[ci].push_back(nb);
      frontier.push_back(nb);
    }
  }

  // Members unreachable through member-only paths hang directly off the
  // root via a routed virtual link of shortest-path length.
  for (std::size_t i = 0; i < m; ++i) {
    if (visited[i]) continue;
    parent_[i] = root_;
    edge_hops_[i] = topo.hop_count(members_[i], root_);
    depth_[i] = 1;
    hops_to_root_[i] = edge_hops_[i];
    children_[idx.at(root_)].push_back(members_[i]);
  }

  radius_hops_ = *std::max_element(hops_to_root_.begin(), hops_to_root_.end());
}

std::size_t SpanningTree::index_of(NodeId n) const {
  const auto it = index_.find(n);
  OPTSYNC_EXPECT(it != index_.end());
  return it->second;
}

bool SpanningTree::contains(NodeId n) const { return index_.contains(n); }

NodeId SpanningTree::parent(NodeId n) const { return parent_[index_of(n)]; }

const std::vector<NodeId>& SpanningTree::children(NodeId n) const {
  return children_[index_of(n)];
}

unsigned SpanningTree::depth(NodeId n) const { return depth_[index_of(n)]; }

unsigned SpanningTree::hops_to_root(NodeId n) const {
  return hops_to_root_[index_of(n)];
}

unsigned SpanningTree::edge_hops(NodeId n) const {
  return edge_hops_[index_of(n)];
}

}  // namespace optsync::net
