// BFS spanning trees for group multicast.
//
// Sesame routes, sequences, and retransmits all sharing traffic of a group
// along a spanning tree rooted at the group root (paper §1.2). We build the
// tree by breadth-first search over the topology restricted to the group's
// members; when group members are not contiguous in the topology, tree edges
// may span multiple physical hops (the edge weight records that).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"

namespace optsync::net {

/// A multicast spanning tree over a subset of nodes, rooted at one of them.
class SpanningTree {
 public:
  /// Builds the tree for `members` rooted at `root` (which must be a member).
  /// BFS over the topology's neighbor relation gives minimum-depth trees on
  /// member-connected topologies; for members that are only reachable through
  /// non-members, the tree falls back to direct (shortest-path) edges whose
  /// weight is the full hop distance — modelling a routed virtual link.
  SpanningTree(const Topology& topo, std::vector<NodeId> members, NodeId root);

  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] bool contains(NodeId n) const;

  /// Parent of `n` in the tree; root's parent is itself.
  [[nodiscard]] NodeId parent(NodeId n) const;

  /// Children of `n` in deterministic order.
  [[nodiscard]] const std::vector<NodeId>& children(NodeId n) const;

  /// Tree depth of `n` in *tree edges* (root = 0).
  [[nodiscard]] unsigned depth(NodeId n) const;

  /// Physical hops from `n` to the root along tree edges.
  [[nodiscard]] unsigned hops_to_root(NodeId n) const;

  /// Physical hops of the single tree edge from `n` up to parent(n).
  [[nodiscard]] unsigned edge_hops(NodeId n) const;

  /// Largest hops_to_root over all members: the worst-case multicast radius.
  [[nodiscard]] unsigned radius_hops() const { return radius_hops_; }

 private:
  [[nodiscard]] std::size_t index_of(NodeId n) const;

  std::vector<NodeId> members_;
  std::unordered_map<NodeId, std::size_t> index_;
  NodeId root_;
  // Indexed by member position (members_ order).
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<unsigned> depth_;
  std::vector<unsigned> hops_to_root_;
  std::vector<unsigned> edge_hops_;
  unsigned radius_hops_ = 0;
};

}  // namespace optsync::net
