// Reliable, FIFO, exactly-once delivery on top of the lossy network.
//
// The paper assumes "reliable, root-sequenced" tree delivery handled by
// hardware retransmission (§1.2); the seed inherited that as an axiom of
// net::Network. ReliableChannel makes the mechanism an explicit, testable
// software layer so fault injection (src/faults/) has something real to
// attack: per-(src, dst) sequence numbers, cumulative acks, timeout +
// retransmit with exponential backoff and a cap, duplicate suppression,
// and in-order release to the caller's delivery callback.
//
// Layering: DsmSystem routes share_out / multicast traffic through a
// ReliableChannel when faults are configured (or when explicitly enabled);
// GWC total order then survives message loss because each root->member
// stream is released in send order, exactly once. Loopback (src == dst)
// bypasses the protocol — an interface's self-delivery cannot be lost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>

#include "net/network.hpp"
#include "simkern/time.hpp"

namespace optsync::net {

struct ReliableConfig {
  /// Used by DsmSystem to decide whether to route through the channel.
  /// Fault injection force-enables it (lossy fiber without retransmission
  /// cannot uphold GWC).
  bool enabled = false;

  /// Initial retransmit timeout. Default ~ a few worst-case mesh round
  /// trips, so the fault-free fast path never spuriously retransmits.
  sim::Duration rto_ns = 30'000;

  /// Timeout multiplier per retransmission of the same packet.
  double backoff = 2.0;

  /// Ceiling on the backed-off timeout.
  sim::Duration max_rto_ns = 2'000'000;

  /// Retransmit cap: after this many retransmissions the packet is
  /// abandoned and counted in stats().expirations. A partition longer than
  /// the whole backoff budget is a node failure, which is beyond this
  /// layer's contract.
  unsigned max_retransmits = 16;

  /// Wire size of an ack (header + cumulative sequence number).
  std::uint32_t ack_bytes = 12;

  /// Delayed-ack window. 0 (default) acks every release immediately — the
  /// seed's exact behaviour. When > 0, an ack owed after an in-order release
  /// is held for this long; if any reverse-direction packet departs first,
  /// the cumulative ack rides in its header for free (acks_piggybacked) and
  /// no standalone ack is sent. Loss-recovery acks (dup suppression,
  /// out-of-order buffering) are never delayed — they are what stops a
  /// retransmit storm.
  sim::Duration ack_delay_ns = 0;
};

struct ReliableStats {
  std::uint64_t data_packets = 0;    ///< distinct payloads accepted for send
  std::uint64_t retransmits = 0;     ///< timer-driven re-sends
  std::uint64_t dup_suppressed = 0;  ///< arrivals discarded by dedup
  std::uint64_t out_of_order = 0;    ///< arrivals buffered awaiting a gap
  std::uint64_t acks_sent = 0;       ///< standalone ack packets on the wire
  /// Cumulative acks that rode in a reverse-direction data packet's header
  /// instead of costing a standalone ack_bytes message.
  std::uint64_t acks_piggybacked = 0;
  std::uint64_t expirations = 0;  ///< packets abandoned at the cap
  /// Expired packets that a late-arriving copy delivered anyway and a
  /// cumulative ack then settled. Distinct from expirations: these packets
  /// were given up on, yet still reached the receiver.
  std::uint64_t expired_acked = 0;
  /// Expired packets put back on the retransmission state machine because
  /// an ack named them as the receiver's next expected sequence — proof the
  /// receiver is alive and still waiting on the gap.
  std::uint64_t revivals = 0;
  /// Largest (delivery time - first send time) over all released packets —
  /// the worst case a retransmitted message was late by.
  sim::Duration max_delivery_delay_ns = 0;
};

class ReliableChannel {
 public:
  explicit ReliableChannel(Network& net, ReliableConfig cfg = {})
      : net_(&net), cfg_(cfg) {}

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Reliable counterpart of Network::send_hops: `on_delivery` runs exactly
  /// once, after every earlier send() for the same (src, dst) pair has been
  /// released, regardless of injected loss/duplication/reorder (within the
  /// retransmit cap).
  void send(NodeId src, NodeId dst, unsigned hops, std::uint32_t bytes,
            std::string_view tag, DeliveryFn on_delivery);

  [[nodiscard]] const ReliableStats& stats() const { return stats_; }
  [[nodiscard]] const ReliableConfig& config() const { return cfg_; }

  /// Packets sent but not yet cumulatively acked (includes abandoned ones);
  /// 0 once a fault-free or recovered simulation drains.
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Packet {
    unsigned hops;
    std::uint32_t bytes;
    std::string_view tag;
    DeliveryFn on_delivery;  // cleared once released
    sim::Time first_sent;
    unsigned attempts = 0;      // retransmissions so far
    sim::EventId timer = 0;     // 0 = no timer armed
    bool received = false;      // receiver end has consumed this seq
    bool expired = false;       // abandoned at the retransmit cap
  };
  // Sequences are 0-based. Acks carry the receiver's next expected sequence
  // number verbatim ("everything below this has been released"), so
  // "nothing released yet" is the natural value 0 — never the result of a
  // subtraction that could wrap when the first packet is still missing.
  struct Flow {
    std::uint64_t next_seq = 0;       // sender: next sequence to assign
    std::uint64_t next_release = 0;   // receiver: next seq to deliver
    unsigned hops = 0;                // reverse-path length for acks
    std::map<std::uint64_t, Packet> packets;  // unacked, keyed by seq
    // Delayed-ack state (ack_delay_ns > 0): an ack is owed for releases on
    // this flow and may be piggybacked on the next reverse-direction packet.
    bool ack_pending = false;
    sim::EventId ack_timer = 0;  // 0 = no standalone-ack timer armed
  };
  using FlowKey = std::uint64_t;
  static FlowKey key(NodeId src, NodeId dst) {
    return (static_cast<FlowKey>(src) << 32) | dst;
  }
  static NodeId key_src(FlowKey k) { return static_cast<NodeId>(k >> 32); }
  static NodeId key_dst(FlowKey k) {
    return static_cast<NodeId>(k & 0xffffffffull);
  }
  static FlowKey reverse(FlowKey k) { return key(key_dst(k), key_src(k)); }

  void transmit(FlowKey k, std::uint64_t seq, DeliveryKind kind);
  void arm_timer(FlowKey k, std::uint64_t seq);
  void on_timeout(FlowKey k, std::uint64_t seq);
  void on_data(FlowKey k, std::uint64_t seq);
  void on_ack(FlowKey k, std::uint64_t next_expected);
  void send_ack(FlowKey k);
  void note_ack_owed(FlowKey k);

  Network* net_;
  ReliableConfig cfg_;
  // std::map: iterator/reference stability under the reentrant sends that
  // delivery callbacks routinely perform (root sequencing fans back out).
  std::map<FlowKey, Flow> flows_;
  ReliableStats stats_;
};

}  // namespace optsync::net
