#include "rt/rt_mutex.hpp"

#include "simkern/assert.hpp"

namespace optsync::rt {

using dsm::lock_grant_value;
using dsm::lock_held;
using dsm::lock_holder;
using dsm::lock_request_value;

RtOptimisticMutex::RtOptimisticMutex(RtSystem& sys, VarId lock, Config cfg)
    : sys_(&sys), lock_(lock), cfg_(cfg) {}

RtOptimisticMutex::NodeState& RtOptimisticMutex::state(NodeId n) {
  std::lock_guard lk(states_mu_);
  auto& slot = states_[n];
  if (!slot) slot = std::make_unique<NodeState>(cfg_.history_decay);
  return *slot;
}

RtOptimisticMutex::Outcome RtOptimisticMutex::execute(NodeId n,
                                                      const Section& sec) {
  OPTSYNC_EXPECT(sec.body != nullptr);
  auto& st = state(n);
  auto& sys = *sys_;
  stats_.executions.fetch_add(1, std::memory_order_relaxed);

  std::vector<Word> saved_values(sec.shared_writes.size());
  Outcome outcome;

  {
    std::lock_guard lk(st.mu);
    if (st.in_section) {
      throw ContractViolation("cannot safely nest mutex lock requests");
    }
    st.in_section = true;
    st.variables_saved = false;
    st.pending_rollback = false;
    st.granted = false;
  }

  // Request the lock: atomically swap the local copy (Fig. 4 lines 03-04).
  const Word old_val = sys.atomic_exchange(n, lock_, lock_request_value(n));
  const bool was_busy = lock_held(old_val) && lock_holder(old_val) != n;

  double history_now;
  {
    std::lock_guard lk(st.mu);
    st.history.observe(was_busy ? 1.0 : 0.0);
    history_now = st.history.value();
  }

  // Arm the interrupt. It runs on the applier thread with insharing already
  // suspended; every branch except the rollback one resumes insharing.
  sys.arm_interrupt(n, lock_, [this, n, &st](VarId, Word value, NodeId) {
    auto& sys2 = *sys_;
    bool resume = true;
    {
      std::lock_guard lk(st.mu);
      if (dsm::lock_granted_to(value, n)) {
        st.granted = true;
      } else if (value == kLockFree) {
        // momentary free; keep waiting
      } else {
        st.history.observe(1.0);
        if (st.variables_saved) {
          // Failed speculation: leave insharing suspended for the rollback,
          // which the requesting thread performs.
          st.pending_rollback = true;
          resume = false;
        }
      }
    }
    if (resume) sys2.resume_insharing(n);
    st.cv.notify_all();
  });

  // A grant may have been applied between the exchange and the arming (a
  // window the simulated substrate does not have); fold the current local
  // value into the decision and the granted flag.
  const Word cur = sys.read(n, lock_);
  {
    std::lock_guard lk(st.mu);
    if (dsm::lock_granted_to(cur, n)) st.granted = true;
  }

  const bool indicates_usage =
      was_busy || old_val != kLockFree || (lock_held(cur) && !dsm::lock_granted_to(cur, n)) ||
      history_now > cfg_.history_threshold;

  if (!cfg_.enable_optimistic || indicates_usage) {
    // ---- Regular path -------------------------------------------------
    stats_.regular_paths.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock lk(st.mu);
      st.cv.wait(lk, [&] { return st.granted; });
    }
    sec.body(n);
  } else {
    // ---- Optimistic path ----------------------------------------------
    stats_.optimistic_attempts.fetch_add(1, std::memory_order_relaxed);
    outcome.used_optimistic = true;

    for (std::size_t i = 0; i < sec.shared_writes.size(); ++i) {
      saved_values[i] = sys.read(n, sec.shared_writes[i]);
    }
    if (sec.save_locals) sec.save_locals();
    {
      std::lock_guard lk(st.mu);
      st.variables_saved = true;
    }

    sec.body(n);  // speculative: the sequencer filters our shared writes
                  // until the grant is ours

    bool rolled_back = false;
    for (;;) {
      std::unique_lock lk(st.mu);
      if (st.pending_rollback) {
        st.pending_rollback = false;
        st.variables_saved = false;
        rolled_back = true;
        lk.unlock();
        // Rollback on this thread (the paper's lines 22-26): restore local
        // memory, then let queued updates flow.
        for (std::size_t i = 0; i < sec.shared_writes.size(); ++i) {
          sys.poke(n, sec.shared_writes[i], saved_values[i]);
        }
        if (sec.restore_locals) sec.restore_locals();
        sys.resume_insharing(n);
        continue;
      }
      if (st.granted) break;
      st.cv.wait(lk, [&] { return st.granted || st.pending_rollback; });
    }

    if (rolled_back) {
      stats_.rollbacks.fetch_add(1, std::memory_order_relaxed);
      outcome.rolled_back = true;
      sec.body(n);  // re-run with the lock actually held
    } else {
      stats_.optimistic_successes.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lk(st.mu);
      st.variables_saved = false;
    }
  }

  sys.disarm_interrupt(n, lock_);
  sys.write(n, lock_, kLockFree);
  {
    std::lock_guard lk(st.mu);
    st.in_section = false;
  }
  return outcome;
}

}  // namespace optsync::rt
