// The regular GWC queue lock for the threaded runtime — the blocking
// counterpart of sync::GwcQueueLock, usable straight from std::threads.
#pragma once

#include <atomic>

#include "rt/rt_group.hpp"

namespace optsync::rt {

class RtGwcQueueLock {
 public:
  RtGwcQueueLock(RtSystem& sys, VarId lock) : sys_(&sys), lock_(lock) {}
  RtGwcQueueLock(const RtGwcQueueLock&) = delete;
  RtGwcQueueLock& operator=(const RtGwcQueueLock&) = delete;

  /// Requests the lock for node `n` and blocks the calling thread until the
  /// grant reaches the node's local memory.
  void acquire(NodeId n) {
    sys_->atomic_exchange(n, lock_, dsm::lock_request_value(n));
    sys_->wait_until(n, lock_,
                     [n](Word v) { return dsm::lock_granted_to(v, n); });
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Releases the lock (caller must hold it).
  void release(NodeId n) {
    sys_->write(n, lock_, kLockFree);
    releases_.fetch_add(1, std::memory_order_relaxed);
  }

  /// RAII guard for exception-safe sections.
  class Guard {
   public:
    Guard(RtGwcQueueLock& lk, NodeId n) : lk_(&lk), n_(n) { lk.acquire(n); }
    ~Guard() { lk_->release(n_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    RtGwcQueueLock* lk_;
    NodeId n_;
  };

  [[nodiscard]] std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t releases() const {
    return releases_.load(std::memory_order_relaxed);
  }

 private:
  RtSystem* sys_;
  VarId lock_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> releases_{0};
};

}  // namespace optsync::rt
