// Optimistic mutual exclusion on the threaded runtime.
//
// The same Fig. 4/5 state machine as core::OptimisticMutex, but with the
// interrupt handler genuinely racing the requesting thread: the handler runs
// on the node's applier thread (where the sharing hardware would raise it),
// while the section body runs on the caller's thread. Synchronization
// between the two is the per-node state mutex + condition variable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/usage_history.hpp"
#include "rt/rt_group.hpp"

namespace optsync::rt {

class RtOptimisticMutex {
 public:
  struct Config {
    bool enable_optimistic = true;
    double history_threshold = 0.30;
    double history_decay = 0.95;
  };

  RtOptimisticMutex(RtSystem& sys, VarId lock, Config cfg);
  RtOptimisticMutex(RtSystem& sys, VarId lock)
      : RtOptimisticMutex(sys, lock, Config{}) {}
  RtOptimisticMutex(const RtOptimisticMutex&) = delete;
  RtOptimisticMutex& operator=(const RtOptimisticMutex&) = delete;

  struct Section {
    /// Mutex-data variables the body writes (the rollback save list).
    std::vector<VarId> shared_writes;
    std::function<void()> save_locals;
    std::function<void()> restore_locals;
    /// Runs on the calling thread; re-run after a rollback, so must be
    /// re-runnable.
    std::function<void(NodeId)> body;
  };

  struct Outcome {
    bool used_optimistic = false;
    bool rolled_back = false;
  };

  /// Executes `section` on node `n` under the lock. Blocking call.
  Outcome execute(NodeId n, const Section& section);

  struct Stats {
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> optimistic_attempts{0};
    std::atomic<std::uint64_t> optimistic_successes{0};
    std::atomic<std::uint64_t> rollbacks{0};
    std::atomic<std::uint64_t> regular_paths{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct NodeState {
    explicit NodeState(double decay) : history(decay) {}
    std::mutex mu;
    std::condition_variable cv;
    core::UsageHistory history;  // guarded by mu
    bool in_section = false;
    bool variables_saved = false;
    bool pending_rollback = false;
    bool granted = false;
  };

  NodeState& state(NodeId n);

  RtSystem* sys_;
  VarId lock_;
  Config cfg_;
  std::mutex states_mu_;
  std::unordered_map<NodeId, std::unique_ptr<NodeState>> states_;
  Stats stats_;
};

}  // namespace optsync::rt
