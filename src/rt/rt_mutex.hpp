// Optimistic mutual exclusion on the threaded runtime.
//
// The same Fig. 4/5 state machine as core::OptimisticMutex, but with the
// interrupt handler genuinely racing the requesting thread: the handler runs
// on the node's applier thread (where the sharing hardware would raise it),
// while the section body runs on the caller's thread. Synchronization
// between the two is the per-node state mutex + condition variable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/usage_history.hpp"
#include "rt/rt_group.hpp"
#include "sync/lock.hpp"

namespace optsync::rt {

class RtOptimisticMutex {
 public:
  struct Config {
    bool enable_optimistic = true;
    double history_threshold = 0.30;
    double history_decay = 0.95;
  };

  RtOptimisticMutex(RtSystem& sys, VarId lock, Config cfg);
  RtOptimisticMutex(RtSystem& sys, VarId lock)
      : RtOptimisticMutex(sys, lock, Config{}) {}
  RtOptimisticMutex(const RtOptimisticMutex&) = delete;
  RtOptimisticMutex& operator=(const RtOptimisticMutex&) = delete;

  struct Section {
    /// Mutex-data variables the body writes (the rollback save list).
    std::vector<VarId> shared_writes;
    std::function<void()> save_locals;
    std::function<void()> restore_locals;
    /// Runs on the calling thread; re-run after a rollback, so must be
    /// re-runnable.
    std::function<void(NodeId)> body;
  };

  struct Outcome {
    bool used_optimistic = false;
    bool rolled_back = false;
  };

  /// Executes `section` on node `n` under the lock. Blocking call.
  Outcome execute(NodeId n, const Section& section);

  /// Snapshot of the counters in the unified sync::LockStatsView shape.
  /// The class cannot implement sync::Lock itself (it runs on real
  /// threads, not the simulator's coroutine scheduler) but it reports in
  /// the same vocabulary: executions == acquisitions here, since every
  /// completed execute() confirmed ownership exactly once.
  [[nodiscard]] sync::LockStatsView stats_view() const {
    sync::LockStatsView v;
    v.executions = stats_.executions.load(std::memory_order_relaxed);
    v.acquisitions = v.executions;
    v.releases = v.executions;
    v.optimistic_attempts =
        stats_.optimistic_attempts.load(std::memory_order_relaxed);
    v.optimistic_successes =
        stats_.optimistic_successes.load(std::memory_order_relaxed);
    v.rollbacks = stats_.rollbacks.load(std::memory_order_relaxed);
    v.regular_paths = stats_.regular_paths.load(std::memory_order_relaxed);
    return v;
  }

 private:
  struct Stats {
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> optimistic_attempts{0};
    std::atomic<std::uint64_t> optimistic_successes{0};
    std::atomic<std::uint64_t> rollbacks{0};
    std::atomic<std::uint64_t> regular_paths{0};
  };

  struct NodeState {
    explicit NodeState(double decay) : history(decay) {}
    std::mutex mu;
    std::condition_variable cv;
    core::UsageHistory history;  // guarded by mu
    bool in_section = false;
    bool variables_saved = false;
    bool pending_rollback = false;
    bool granted = false;
  };

  NodeState& state(NodeId n);

  RtSystem* sys_;
  VarId lock_;
  Config cfg_;
  std::mutex states_mu_;
  std::unordered_map<NodeId, std::unique_ptr<NodeState>> states_;
  Stats stats_;
};

}  // namespace optsync::rt
