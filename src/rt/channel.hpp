// Blocking MPMC channel for the threaded runtime.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace optsync::rt {

/// Unbounded multi-producer multi-consumer queue with shutdown.
/// pop() blocks until an item arrives or the channel is closed; after
/// close(), remaining items still drain (graceful shutdown).
template <class T>
class Channel {
 public:
  void push(T item) {
    {
      std::lock_guard lk(mu_);
      if (closed_) return;  // dropping on closed channel is a benign race
                            // during shutdown
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks for the next item; nullopt means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking variant; nullopt means empty (not necessarily closed).
  std::optional<T> try_pop() {
    std::lock_guard lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace optsync::rt
