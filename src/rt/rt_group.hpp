// Threaded runtime: the Sesame group protocol under real concurrency.
//
// The simulated substrate (dsm/) proves the timing story; this runtime
// proves the *protocol* story with actual threads racing each other:
//   * every node has an applier thread that applies root-sequenced updates
//     in order (GWC delivery);
//   * one sequencer thread plays the group root: it orders all writes,
//     manages lock queues, and filters speculative mutex-data writes from
//     non-holders;
//   * insharing suspension pauses the applier; interrupts run on the
//     applier thread exactly where the sharing hardware would raise them;
//   * hardware blocking drops self-echoed mutex data at the applier.
//
// User code (one thread per node, typically) talks to the runtime through
// read/write/atomic_exchange/wait_until, mirroring the DsmNode API.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dsm/types.hpp"
#include "rt/channel.hpp"

namespace optsync::rt {

using dsm::kLockFree;
using dsm::NodeId;
using dsm::VarId;
using dsm::VarKind;
using dsm::Word;

class RtSystem {
 public:
  struct Config {
    std::size_t nodes = 4;
    /// Artificial per-message delay injected in the sequencer (widens race
    /// windows for the stress tests). 0 = full speed.
    std::uint32_t link_delay_us = 0;
    bool hardware_blocking = true;
    bool filter_speculative = true;
  };

  explicit RtSystem(Config cfg);
  ~RtSystem();
  RtSystem(const RtSystem&) = delete;
  RtSystem& operator=(const RtSystem&) = delete;

  // --- variable definition (call before starting user threads) ----------
  VarId define_data(std::string name);
  VarId define_lock(std::string name);
  VarId define_mutex_data(std::string name, VarId lock);

  // --- node-side operations (thread-safe) --------------------------------
  [[nodiscard]] Word read(NodeId n, VarId v) const;
  void write(NodeId n, VarId v, Word value);
  Word atomic_exchange(NodeId n, VarId v, Word value);
  /// Restores a local value without sharing (rollback).
  void poke(NodeId n, VarId v, Word value);

  /// Blocks the calling thread until pred(local value of v) holds.
  void wait_until(NodeId n, VarId v, const std::function<bool(Word)>& pred);

  // --- insharing + interrupts (the Fig. 5 machinery) ---------------------
  void suspend_insharing(NodeId n);
  void resume_insharing(NodeId n);

  /// Handler runs on the applier thread with insharing suspended; it (or
  /// the thread it wakes) must eventually resume_insharing().
  using InterruptHandler = std::function<void(VarId, Word, NodeId origin)>;
  void arm_interrupt(NodeId n, VarId v, InterruptHandler h);
  void disarm_interrupt(NodeId n, VarId v);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

  struct Stats {
    std::atomic<std::uint64_t> sequenced{0};
    std::atomic<std::uint64_t> speculative_drops{0};
    std::atomic<std::uint64_t> echoes_dropped{0};
    std::atomic<std::uint64_t> interrupts{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Blocks until every queue is drained and appliers are idle — the
  /// threaded analog of running the simulator dry. Call only when no user
  /// thread is issuing writes.
  void quiesce();

 private:
  struct Update {
    std::uint64_t seq;
    VarId var;
    Word value;
    NodeId origin;
  };
  struct OutMsg {
    NodeId origin;
    VarId var;
    Word value;
  };
  struct Node {
    mutable std::mutex mem_mu;
    std::condition_variable mem_cv;
    std::vector<Word> memory;
    bool suspended = false;
    std::condition_variable suspend_cv;
    std::unordered_map<VarId, InterruptHandler> interrupts;
    Channel<Update> inbox;
    std::thread applier;
    std::atomic<std::uint64_t> applied{0};
  };
  struct LockState {
    NodeId holder = dsm::kNoNode;
    std::deque<NodeId> queue;
  };

  void sequencer_main();
  void applier_main(NodeId n);
  void apply_update(Node& node, NodeId id, const Update& u);
  void multicast(VarId v, Word value, NodeId origin);

  Config cfg_;
  std::vector<dsm::VarInfo> vars_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Channel<OutMsg> to_root_;
  std::thread sequencer_;
  std::uint64_t next_seq_ = 1;  // sequencer thread only
  std::unordered_map<VarId, LockState> locks_;  // sequencer thread only
  std::atomic<std::int64_t> inflight_{0};  ///< undelivered messages
  Stats stats_;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace optsync::rt
