#include "rt/rt_group.hpp"

#include <chrono>

#include "simkern/assert.hpp"

namespace optsync::rt {

RtSystem::RtSystem(Config cfg) : cfg_(cfg) {
  OPTSYNC_EXPECT(cfg.nodes >= 1);
  nodes_.reserve(cfg.nodes);
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
  sequencer_ = std::thread([this] { sequencer_main(); });
  for (NodeId i = 0; i < cfg.nodes; ++i) {
    nodes_[i]->applier = std::thread([this, i] { applier_main(i); });
  }
}

RtSystem::~RtSystem() {
  shutting_down_.store(true, std::memory_order_release);
  to_root_.close();
  if (sequencer_.joinable()) sequencer_.join();
  for (auto& node : nodes_) {
    // Unstick a suspended applier, then let it drain and exit.
    {
      std::lock_guard lk(node->mem_mu);
      node->suspended = false;
    }
    node->suspend_cv.notify_all();
    node->inbox.close();
  }
  for (auto& node : nodes_) {
    if (node->applier.joinable()) node->applier.join();
  }
}

VarId RtSystem::define_data(std::string name) {
  const auto v = static_cast<VarId>(vars_.size());
  vars_.push_back(dsm::VarInfo{std::move(name), 0, VarKind::kData,
                               dsm::kNoVar, 0});
  for (auto& node : nodes_) {
    std::lock_guard lk(node->mem_mu);
    node->memory.resize(vars_.size(), 0);
  }
  return v;
}

VarId RtSystem::define_lock(std::string name) {
  const auto v = static_cast<VarId>(vars_.size());
  vars_.push_back(dsm::VarInfo{std::move(name), 0, VarKind::kLock,
                               dsm::kNoVar, 0});
  for (auto& node : nodes_) {
    std::lock_guard lk(node->mem_mu);
    node->memory.resize(vars_.size(), 0);
    node->memory[v] = kLockFree;
  }
  return v;
}

VarId RtSystem::define_mutex_data(std::string name, VarId lock) {
  OPTSYNC_EXPECT(lock < vars_.size());
  OPTSYNC_EXPECT(vars_[lock].kind == VarKind::kLock);
  const auto v = static_cast<VarId>(vars_.size());
  vars_.push_back(dsm::VarInfo{std::move(name), 0, VarKind::kMutexData,
                               lock, 0});
  for (auto& node : nodes_) {
    std::lock_guard lk(node->mem_mu);
    node->memory.resize(vars_.size(), 0);
  }
  return v;
}

Word RtSystem::read(NodeId n, VarId v) const {
  OPTSYNC_EXPECT(n < nodes_.size() && v < vars_.size());
  std::lock_guard lk(nodes_[n]->mem_mu);
  return nodes_[n]->memory[v];
}

void RtSystem::write(NodeId n, VarId v, Word value) {
  OPTSYNC_EXPECT(n < nodes_.size() && v < vars_.size());
  auto& node = *nodes_[n];
  {
    std::lock_guard lk(node.mem_mu);
    node.memory[v] = value;
  }
  node.mem_cv.notify_all();
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  to_root_.push(OutMsg{n, v, value});
}

Word RtSystem::atomic_exchange(NodeId n, VarId v, Word value) {
  OPTSYNC_EXPECT(n < nodes_.size() && v < vars_.size());
  auto& node = *nodes_[n];
  Word old;
  {
    std::lock_guard lk(node.mem_mu);
    old = node.memory[v];
    node.memory[v] = value;
  }
  node.mem_cv.notify_all();
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  to_root_.push(OutMsg{n, v, value});
  return old;
}

void RtSystem::poke(NodeId n, VarId v, Word value) {
  OPTSYNC_EXPECT(n < nodes_.size() && v < vars_.size());
  auto& node = *nodes_[n];
  {
    std::lock_guard lk(node.mem_mu);
    node.memory[v] = value;
  }
  node.mem_cv.notify_all();
}

void RtSystem::wait_until(NodeId n, VarId v,
                          const std::function<bool(Word)>& pred) {
  OPTSYNC_EXPECT(n < nodes_.size() && v < vars_.size());
  auto& node = *nodes_[n];
  std::unique_lock lk(node.mem_mu);
  node.mem_cv.wait(lk, [&] { return pred(node.memory[v]); });
}

void RtSystem::suspend_insharing(NodeId n) {
  auto& node = *nodes_[n];
  std::lock_guard lk(node.mem_mu);
  node.suspended = true;
}

void RtSystem::resume_insharing(NodeId n) {
  auto& node = *nodes_[n];
  {
    std::lock_guard lk(node.mem_mu);
    node.suspended = false;
  }
  node.suspend_cv.notify_all();
}

void RtSystem::arm_interrupt(NodeId n, VarId v, InterruptHandler h) {
  OPTSYNC_EXPECT(h != nullptr);
  auto& node = *nodes_[n];
  std::lock_guard lk(node.mem_mu);
  node.interrupts[v] = std::move(h);
}

void RtSystem::disarm_interrupt(NodeId n, VarId v) {
  auto& node = *nodes_[n];
  std::lock_guard lk(node.mem_mu);
  node.interrupts.erase(v);
}

void RtSystem::sequencer_main() {
  while (auto msg = to_root_.pop()) {
    if (cfg_.link_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.link_delay_us));
    }
    const auto& m = *msg;
    const dsm::VarInfo& info = vars_[m.var];
    switch (info.kind) {
      case VarKind::kLock: {
        LockState& ls = locks_[m.var];
        if (m.value == kLockFree) {
          OPTSYNC_ENSURE(ls.holder == m.origin);
          if (!ls.queue.empty()) {
            ls.holder = ls.queue.front();
            ls.queue.pop_front();
            multicast(m.var, dsm::lock_grant_value(ls.holder), m.origin);
          } else {
            ls.holder = dsm::kNoNode;
            multicast(m.var, kLockFree, m.origin);
          }
        } else {
          OPTSYNC_ENSURE(m.value < 0);
          const auto requester = static_cast<NodeId>(-m.value - 1);
          OPTSYNC_ENSURE(requester == m.origin);
          if (ls.holder == dsm::kNoNode) {
            ls.holder = requester;
            multicast(m.var, dsm::lock_grant_value(requester), m.origin);
          } else {
            ls.queue.push_back(requester);
          }
        }
        break;
      }
      case VarKind::kMutexData: {
        const LockState& ls = locks_[info.guard];
        if (cfg_.filter_speculative && ls.holder != m.origin) {
          stats_.speculative_drops.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        multicast(m.var, m.value, m.origin);
        break;
      }
      case VarKind::kData:
        multicast(m.var, m.value, m.origin);
        break;
    }
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void RtSystem::multicast(VarId v, Word value, NodeId origin) {
  const std::uint64_t seq = next_seq_++;
  stats_.sequenced.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(static_cast<std::int64_t>(nodes_.size()),
                      std::memory_order_acq_rel);
  for (auto& node : nodes_) {
    node->inbox.push(Update{seq, v, value, origin});
  }
}

void RtSystem::applier_main(NodeId id) {
  auto& node = *nodes_[id];
  while (auto u = node.inbox.pop()) {
    // Honor insharing suspension before touching memory.
    {
      std::unique_lock lk(node.mem_mu);
      node.suspend_cv.wait(lk, [&] {
        return !node.suspended || shutting_down_.load(std::memory_order_acquire);
      });
    }
    apply_update(node, id, *u);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void RtSystem::apply_update(Node& node, NodeId id, const Update& u) {
  const dsm::VarInfo& info = vars_[u.var];
  InterruptHandler handler;
  {
    std::lock_guard lk(node.mem_mu);
    // Hardware blocking (Fig. 6).
    if (cfg_.hardware_blocking && u.origin == id &&
        info.kind == VarKind::kMutexData) {
      stats_.echoes_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    node.memory[u.var] = u.value;
    ++node.applied;
    const auto it = node.interrupts.find(u.var);
    if (it != node.interrupts.end()) {
      // Interrupt is atomically coupled with insharing suspension: set the
      // flag while still holding the memory lock, then run the handler
      // outside it (handlers call back into the runtime).
      node.suspended = true;
      stats_.interrupts.fetch_add(1, std::memory_order_relaxed);
      handler = it->second;
    }
  }
  // Run the handler before notifying memory waiters so a thread observing
  // the new value can rely on the interrupt logic having executed.
  if (handler) handler(u.var, u.value, u.origin);
  node.mem_cv.notify_all();
}

void RtSystem::quiesce() {
  using namespace std::chrono_literals;
  int stable = 0;
  while (stable < 3) {
    if (inflight_.load(std::memory_order_acquire) == 0) {
      ++stable;
    } else {
      stable = 0;
    }
    std::this_thread::sleep_for(200us);
  }
}

}  // namespace optsync::rt
