#include "telemetry/sampler.hpp"

#include <utility>

namespace optsync::telemetry {

Sampler::Sampler(SamplerConfig cfg) : cfg_(cfg), set_(cfg.capacity) {
  if (cfg_.interval_ns == 0) cfg_.interval_ns = 50'000;
}

void Sampler::add_gauge(std::string name, Labels labels,
                        std::function<double()> fn) {
  Probe p;
  p.idx = set_.series(std::move(name), std::move(labels));
  p.fn = std::move(fn);
  probes_.push_back(std::move(p));
}

void Sampler::add_rate(std::string name, Labels labels,
                       std::function<double()> counter) {
  Probe p;
  p.idx = set_.series(std::move(name), std::move(labels));
  p.fn = std::move(counter);
  p.rate = true;
  probes_.push_back(std::move(p));
}

void Sampler::start(sim::Scheduler& sched) {
  sched_ = &sched;
  pending_ = sched.after_housekeeping(cfg_.interval_ns, [this] { tick(); });
}

void Sampler::stop() {
  if (sched_ != nullptr && pending_ != 0) {
    sched_->cancel_housekeeping(pending_);
    pending_ = 0;
  }
}

void Sampler::sample_now(sim::Time now) {
  ++ticks_;
  for (Probe& p : probes_) {
    const double raw = p.fn();
    double v = raw;
    if (p.rate) {
      const sim::Duration dt = now - p.prev_t;
      // Zero-length windows and the priming tick record 0, never inf.
      v = (p.primed && dt > 0)
              ? (raw - p.prev) / (static_cast<double>(dt) / 1e9)
              : 0.0;
      p.prev = raw;
      p.prev_t = now;
      p.primed = true;
    }
    set_.append(p.idx, now, v);
  }
}

void Sampler::tick() {
  pending_ = 0;
  sample_now(sched_->now());
  // Re-arm only while the simulation is still doing real work; the run
  // must drain, and another housekeeping loop (the coalesce controller,
  // say) must not read as work or the two keep each other alive forever.
  if (sched_->busy()) {
    pending_ = sched_->after_housekeeping(cfg_.interval_ns, [this] { tick(); });
  }
}

}  // namespace optsync::telemetry
