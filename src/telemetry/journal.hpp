// Structured decision journal: a bounded, pooled ring of typed records
// explaining *why* the speculative layers did what they did — txn aborts
// with a reason taxonomy and the conflicting orec stripe + owner, lease
// grant/invalidation/expiry with epoch deltas, and every elastic-controller
// ladder step with the exact inputs that triggered it.
//
// Counters answer "how many"; the journal answers "which one, and why".
// Records are flat PODs appended into a preallocated pool (same idiom as
// the Tracer's span ring): once `capacity` records are written, further
// appends are counted in `dropped()` and discarded — forensics must never
// perturb the run it is explaining.
//
// `write_json` emits the "optsync-journal/1" document consumed by
// tools/dsm_inspect (schema documented in PROTOCOL.md):
//
//   {
//     "schema": "optsync-journal/1",
//     "dropped": <n>,
//     "events": [ {"kind": "txn_abort", "t": ..., ...}, ... ]
//   }
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "simkern/time.hpp"

namespace optsync::telemetry {

/// Why a transaction attempt died. The first three partition the abort
/// counter exactly (read_clobber + validation + dir_epoch == txn_aborts);
/// fallback escalation is journaled as its own record kind and counted
/// separately (it ends the *optimistic* phase, not an attempt mid-flight).
enum class AbortReason : std::uint8_t {
  kReadSetClobber = 0,   // doomed by a clobber interrupt before commit
  kCommitValidation,     // orec version moved under a plain read
  kDirectoryEpoch,       // elastic directory stripe changed (stale routing)
  kFallbackEscalation,   // contention manager gave up on speculation
};

[[nodiscard]] const char* abort_reason_name(AbortReason r);

class Journal {
 public:
  enum class Kind : std::uint8_t {
    kTxnAbort = 0,
    kLeaseGrant,
    kLeaseInvalidation,
    kLeaseExpiry,
    kElasticDecision,
  };

  /// One flat record; which fields are meaningful depends on `kind` (the
  /// JSON export only emits the relevant subset). Kept POD so the pool is
  /// a single allocation.
  struct Event {
    Kind kind = Kind::kTxnAbort;
    sim::Time t = 0;
    // txn abort
    AbortReason reason = AbortReason::kReadSetClobber;
    std::uint32_t node = 0;    // aborting txn's node / lease holder node
    std::uint32_t shard = 0;   // conflict shard / lease shard / ladder shard
    std::uint32_t stripe = 0;  // conflicting orec stripe / lease slot
    std::uint32_t owner = 0;   // conflicting writer (or root) node
    std::uint32_t attempt = 0; // abort count for this op so far
    // lease (epoch delta at grant/invalidation/expiry)
    std::uint64_t epoch_old = 0;
    std::uint64_t epoch_new = 0;
    // elastic ladder step + triggering inputs
    const char* step = nullptr;  // "promote", "swap_pin", "split", ...
    std::uint32_t target = 0;    // destination shard / stripe / group
    double slope_per_s = 0.0;
    double peak_backlog = 0.0;
    double backlog = 0.0;
    std::uint64_t top_key = 0;
    double top_share = 0.0;
    std::uint32_t streak = 0;
    std::uint32_t cooldown = 0;
  };

  explicit Journal(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    events_.reserve(capacity_);
  }

  // -- typed append helpers (the only write API) --------------------------

  void txn_abort(sim::Time t, AbortReason reason, std::uint32_t node,
                 std::uint32_t shard, std::uint32_t stripe,
                 std::uint32_t owner, std::uint32_t attempt) {
    Event e;
    e.kind = Kind::kTxnAbort;
    e.t = t;
    e.reason = reason;
    e.node = node;
    e.shard = shard;
    e.stripe = stripe;
    e.owner = owner;
    e.attempt = attempt;
    push(e);
  }

  void lease_grant(sim::Time t, std::uint32_t node, std::uint32_t shard,
                   std::uint32_t slot, std::uint64_t epoch_old,
                   std::uint64_t epoch_new) {
    push(lease_event(Kind::kLeaseGrant, t, node, shard, slot, epoch_old,
                     epoch_new));
  }

  void lease_invalidation(sim::Time t, std::uint32_t node, std::uint32_t shard,
                          std::uint32_t slot, std::uint64_t epoch_old,
                          std::uint64_t epoch_new) {
    push(lease_event(Kind::kLeaseInvalidation, t, node, shard, slot, epoch_old,
                     epoch_new));
  }

  void lease_expiry(sim::Time t, std::uint32_t node, std::uint32_t shard,
                    std::uint32_t slot, std::uint64_t epoch) {
    push(lease_event(Kind::kLeaseExpiry, t, node, shard, slot, epoch, epoch));
  }

  /// `step` must point at a string with static storage duration.
  void elastic_decision(sim::Time t, const char* step, std::uint32_t shard,
                        std::uint32_t target, double slope_per_s,
                        double peak_backlog, double backlog,
                        std::uint64_t top_key, double top_share,
                        std::uint32_t streak, std::uint32_t cooldown) {
    Event e;
    e.kind = Kind::kElasticDecision;
    e.t = t;
    e.step = step;
    e.shard = shard;
    e.target = target;
    e.slope_per_s = slope_per_s;
    e.peak_backlog = peak_backlog;
    e.backlog = backlog;
    e.top_key = top_key;
    e.top_share = top_share;
    e.streak = streak;
    e.cooldown = cooldown;
    push(e);
  }

  // -- inspection ---------------------------------------------------------

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t count(Kind k) const;

  /// Emits the optsync-journal/1 document (see header comment).
  void write_json(std::ostream& out) const;

  [[nodiscard]] static const char* kind_name(Kind k);

 private:
  static Event lease_event(Kind kind, sim::Time t, std::uint32_t node,
                           std::uint32_t shard, std::uint32_t slot,
                           std::uint64_t epoch_old, std::uint64_t epoch_new) {
    Event e;
    e.kind = kind;
    e.t = t;
    e.node = node;
    e.shard = shard;
    e.stripe = slot;
    e.epoch_old = epoch_old;
    e.epoch_new = epoch_new;
    return e;
  }

  void push(const Event& e) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  std::size_t capacity_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace optsync::telemetry
