#include "telemetry/rt_sampler.hpp"

#include <utility>

namespace optsync::telemetry {

RtSampler::RtSampler(std::chrono::microseconds interval, std::size_t capacity)
    : interval_(interval), set_(capacity) {}

RtSampler::~RtSampler() { stop(); }

void RtSampler::add_gauge(std::string name, Labels labels,
                          std::function<double()> fn) {
  probes_.push_back(Probe{set_.series(std::move(name), std::move(labels)),
                          std::move(fn)});
}

void RtSampler::add_rate(std::string name, Labels labels,
                         std::function<double()> counter) {
  Probe p{set_.series(std::move(name), std::move(labels)), std::move(counter)};
  p.rate = true;
  probes_.push_back(std::move(p));
}

void RtSampler::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void RtSampler::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

void RtSampler::sample_once(std::chrono::steady_clock::time_point t0) {
  const auto now = std::chrono::steady_clock::now();
  const auto t = static_cast<sim::Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - t0).count());
  for (Probe& p : probes_) {
    const double raw = p.fn();
    if (!p.rate) {
      set_.append(p.idx, t, raw);
      continue;
    }
    // Mirrors Sampler's rate probe: prime on the first tick, and never
    // divide by a zero-length interval.
    double v = 0.0;
    if (p.primed && t > p.prev_t) {
      v = (raw - p.prev) * 1e9 / static_cast<double>(t - p.prev_t);
    }
    p.prev = raw;
    p.prev_t = t;
    p.primed = true;
    set_.append(p.idx, t, v);
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void RtSampler::run() {
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    // Wait releases the mutex, so stop() can always get in; sampling runs
    // under the lock, which is the whole thread-safety story of set_.
    cv_.wait_for(lk, interval_, [this] { return stop_requested_; });
    sample_once(t0);
  }
}

}  // namespace optsync::telemetry
