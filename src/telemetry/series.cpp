#include "telemetry/series.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "stats/json.hpp"

namespace optsync::telemetry {

SeriesSet::SeriesSet(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::size_t SeriesSet::series(std::string name, Labels labels) {
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (all_[i].name == name && all_[i].labels == labels) return i;
  }
  Series s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  all_.push_back(std::move(s));
  return all_.size() - 1;
}

void SeriesSet::append(std::size_t idx, sim::Time t, double v) {
  Series& s = all_[idx];
  if (s.samples.size() >= capacity_) {
    s.samples.pop_front();
    ++s.dropped;
  }
  s.samples.push_back(Sample{t, v});
}

const Series* SeriesSet::find(std::string_view name,
                              const Labels& labels) const {
  for (const Series& s : all_) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

namespace {

/// Prometheus label values escape backslash, double-quote, and newline.
void write_escaped(std::ostream& out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') out << '\\';
    if (c == '\n') {
      out << "\\n";
      continue;
    }
    out << c;
  }
}

void write_value(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    // Exposition format spells non-finite values out; don't emit "inf"
    // from printf locale-dependently.
    out << (std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf"));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out << buf;
}

}  // namespace

void SeriesSet::write_prometheus(std::ostream& out) const {
  std::set<std::string> typed;
  for (const Series& s : all_) {
    if (typed.insert(s.name).second) {
      out << "# TYPE " << s.name << " gauge\n";
      // Emit every series of this metric name together (the exposition
      // format requires one contiguous block per metric family).
      for (const Series& peer : all_) {
        if (peer.name != s.name) continue;
        out << peer.name;
        if (!peer.labels.empty()) {
          out << '{';
          bool first = true;
          for (const auto& [k, v] : peer.labels) {
            if (!first) out << ',';
            first = false;
            out << k << "=\"";
            write_escaped(out, v);
            out << '"';
          }
          out << '}';
        }
        out << ' ';
        write_value(out, peer.last());
        out << '\n';
      }
    }
  }
}

void SeriesSet::write_json(std::ostream& out, sim::Duration interval_ns) const {
  stats::JsonWriter w(out, /*pretty=*/true);
  w.begin_object();
  w.value("schema", "optsync-timeseries/1");
  w.value("interval_ns", static_cast<std::uint64_t>(interval_ns));
  w.begin_array("series");
  for (const Series& s : all_) {
    w.begin_object();
    w.value("name", s.name);
    w.begin_object("labels");
    for (const auto& [k, v] : s.labels) w.value(k, v);
    w.end_object();
    w.value("dropped", s.dropped);
    w.begin_array("samples");
    for (const Sample& p : s.samples) {
      w.begin_array();
      w.value(static_cast<std::uint64_t>(p.t));
      w.value(p.v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace optsync::telemetry
