#include "telemetry/series.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "stats/json.hpp"

namespace optsync::telemetry {

SeriesSet::SeriesSet(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::size_t SeriesSet::series(std::string name, Labels labels) {
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (all_[i].name == name && all_[i].labels == labels) return i;
  }
  Series s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  all_.push_back(std::move(s));
  return all_.size() - 1;
}

void SeriesSet::append(std::size_t idx, sim::Time t, double v) {
  Series& s = all_[idx];
  if (s.samples.size() >= capacity_) {
    s.samples.pop_front();
    ++s.dropped;
  }
  s.samples.push_back(Sample{t, v});
}

const Series* SeriesSet::find(std::string_view name,
                              const Labels& labels) const {
  for (const Series& s : all_) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

void SeriesSet::set_help(const std::string& name, std::string help) {
  for (auto& [n, h] : help_) {
    if (n == name) {
      h = std::move(help);
      return;
    }
  }
  help_.emplace_back(name, std::move(help));
}

const std::string* SeriesSet::help_of(const std::string& name) const {
  for (const auto& [n, h] : help_) {
    if (n == name) return &h;
  }
  return nullptr;
}

namespace {

std::string sanitize_name(std::string_view raw, bool allow_colon) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' ||
                    (allow_colon && c == ':');
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  if (out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

std::string SeriesSet::sanitize_metric_name(std::string_view raw) {
  return sanitize_name(raw, /*allow_colon=*/true);
}

std::string SeriesSet::sanitize_label_name(std::string_view raw) {
  return sanitize_name(raw, /*allow_colon=*/false);
}

namespace {

/// Prometheus label values escape backslash, double-quote, and newline.
void write_escaped(std::ostream& out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') out << '\\';
    if (c == '\n') {
      out << "\\n";
      continue;
    }
    out << c;
  }
}

void write_value(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    // Exposition format spells non-finite values out; don't emit "inf"
    // from printf locale-dependently.
    out << (std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf"));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out << buf;
}

}  // namespace

void SeriesSet::write_prometheus(std::ostream& out) const {
  // Group by SANITIZED metric name: two raw names that collapse to the
  // same exposition name must render as one contiguous family, or the
  // output fails the format's "metric may not appear twice" rule.
  std::vector<std::string> sanitized;
  sanitized.reserve(all_.size());
  for (const Series& s : all_) {
    sanitized.push_back(sanitize_metric_name(s.name));
  }
  std::set<std::string> emitted;
  for (std::size_t i = 0; i < all_.size(); ++i) {
    const std::string& name = sanitized[i];
    if (!emitted.insert(name).second) continue;
    // HELP precedes TYPE (promtool insists on the order). HELP text
    // escapes backslash and newline only.
    const std::string* help = help_of(all_[i].name);
    out << "# HELP " << name << ' ';
    if (help != nullptr) {
      for (const char c : *help) {
        if (c == '\\') {
          out << "\\\\";
        } else if (c == '\n') {
          out << "\\n";
        } else {
          out << c;
        }
      }
    } else {
      out << "optsync gauge " << name;
    }
    out << "\n# TYPE " << name << " gauge\n";
    for (std::size_t j = 0; j < all_.size(); ++j) {
      if (sanitized[j] != name) continue;
      const Series& peer = all_[j];
      out << name;
      if (!peer.labels.empty()) {
        out << '{';
        bool first = true;
        for (const auto& [k, v] : peer.labels) {
          if (!first) out << ',';
          first = false;
          out << sanitize_label_name(k) << "=\"";
          write_escaped(out, v);
          out << '"';
        }
        out << '}';
      }
      out << ' ';
      write_value(out, peer.last());
      out << '\n';
    }
  }
}

void SeriesSet::write_json(std::ostream& out, sim::Duration interval_ns) const {
  stats::JsonWriter w(out, /*pretty=*/true);
  w.begin_object();
  w.value("schema", "optsync-timeseries/1");
  w.value("interval_ns", static_cast<std::uint64_t>(interval_ns));
  w.begin_array("series");
  for (const Series& s : all_) {
    w.begin_object();
    w.value("name", s.name);
    w.begin_object("labels");
    for (const auto& [k, v] : s.labels) w.value(k, v);
    w.end_object();
    w.value("dropped", s.dropped);
    w.begin_array("samples");
    for (const Sample& p : s.samples) {
      w.begin_array();
      w.value(static_cast<std::uint64_t>(p.t));
      w.value(p.v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace optsync::telemetry
