#include "telemetry/overload.hpp"

#include <algorithm>
#include <string>

namespace optsync::telemetry {

OverloadVerdict assess_backlog(const Series& s, const OverloadConfig& cfg) {
  OverloadVerdict v;
  if (s.samples.empty()) return v;
  v.final_backlog = s.samples.back().v;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < s.samples.size(); ++i) {
    if (s.samples[i].v > v.peak_backlog) {
      v.peak_backlog = s.samples[i].v;
      peak = i;
    }
  }

  // Fit over the window ENDING AT THE PEAK sample, not the end of the
  // series: a finite open-loop run always finishes with a drain phase
  // (arrivals stop, backlog falls), which would mask a shard that was
  // structurally behind for the entire offered-load window. With arrivals
  // that never stop, the peak sits at the end and the two windows agree.
  const std::size_t upto = peak + 1;  // samples [0, upto)
  if (upto < cfg.min_samples) return v;
  const std::size_t window = std::max<std::size_t>(
      cfg.min_samples, static_cast<std::size_t>(static_cast<double>(upto) *
                                                cfg.window_fraction));
  const std::size_t first = upto - std::min(window, upto);
  const std::size_t n = upto - first;

  // Least-squares slope in requests per second of series time. Centering
  // both axes keeps the arithmetic stable for large ns timestamps.
  double mean_t = 0.0, mean_v = 0.0;
  for (std::size_t i = first; i < upto; ++i) {
    mean_t += static_cast<double>(s.samples[i].t);
    mean_v += s.samples[i].v;
  }
  mean_t /= static_cast<double>(n);
  mean_v /= static_cast<double>(n);
  double num = 0.0, den = 0.0;
  for (std::size_t i = first; i < upto; ++i) {
    const double dt = static_cast<double>(s.samples[i].t) - mean_t;
    num += dt * (s.samples[i].v - mean_v);
    den += dt * dt;
  }
  if (den <= 0.0) return v;  // all samples at one instant: no slope
  v.slope_per_s = num / den * 1e9;

  v.drowning = v.slope_per_s >= cfg.min_slope_per_s &&
               v.peak_backlog >= cfg.min_final_backlog;
  return v;
}

bool live_drowning(const Series& s, double current_backlog,
                   const OverloadConfig& cfg) {
  return live_drowning(assess_backlog(s, cfg), current_backlog, cfg);
}

bool live_drowning(const OverloadVerdict& v, double current_backlog,
                   const OverloadConfig& cfg) {
  return v.drowning && current_backlog >= cfg.min_final_backlog;
}

void flag_overload(stats::ServiceReport& report, const SeriesSet& set,
                   const OverloadConfig& cfg) {
  for (auto& sh : report.shards) {
    const Series* s = set.find(
        "optsync_shard_backlog", {{"shard", std::to_string(sh.shard)}});
    if (s == nullptr) continue;
    const OverloadVerdict v = assess_backlog(*s, cfg);
    sh.drowning = v.drowning;
    sh.backlog_slope_per_s = v.slope_per_s;
    sh.final_backlog = v.final_backlog;
    sh.peak_backlog = v.peak_backlog;
  }
}

}  // namespace optsync::telemetry
