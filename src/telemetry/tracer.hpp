// Tracer: span collection + critical-path analysis for traced service ops.
//
// Ownership/propagation model (see span.hpp): a node runs one service op
// at a time, so the op's SpanContext lives in a per-node slot here. Lock
// clients temporarily repoint the slot's parent at their lock-wait span
// around the atomic_exchange that ships the request, so the wire/root
// spans of that request nest under the wait. Root-side code receives the
// context explicitly (SequencedWrite::ctx, the waiter queue) because the
// root serves many nodes interleaved.
//
// Spans are recorded with start/end timestamps (start_span/end_span for
// spans that bracket suspension points, record_span for retroactive ones).
// analyze() groups completed spans per trace, detects orphans (a parent id
// that never materialized — the "span tree is complete" test), and runs an
// interval sweep over each request window: every elementary interval is
// attributed to the highest-priority covering leaf span's bucket, so the
// buckets plus the uncovered remainder ("other") sum to the measured
// arrival->completion latency exactly.
//
// analyze() additionally extracts each op's CRITICAL PATH: a backward walk
// from the request span's completion that repeatedly descends into the
// child whose (clipped) end is latest before the current time — the span
// whose completion gated progress. Gaps between a span's children are the
// span's own self time. The resulting segments partition the request
// window (so path buckets also sum to latency exactly); unlike the
// coverage sweep, work that ran concurrently off the path contributes
// nothing, which is what makes the dominant-bucket verdict per op honest.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkern/time.hpp"
#include "telemetry/span.hpp"

namespace optsync::telemetry {

/// One completed (or still-open: end == 0 while open) span.
struct Span {
  TraceId trace = 0;
  SpanId id = 0;
  SpanId parent = 0;
  SpanKind kind = SpanKind::kRequest;
  std::uint32_t node = 0;
  sim::Time start = 0;
  sim::Time end = 0;
};

/// Critical-path breakdown of one traced op.
struct OpBreakdown {
  TraceId trace = 0;
  std::uint32_t node = 0;
  std::uint32_t shard = 0;
  std::string_view op;  ///< "read" / "write" / "txn" (static storage)
  sim::Time start = 0;
  sim::Time end = 0;
  /// Indexed by Bucket; includes Bucket::kOther, so entries sum to total().
  std::array<sim::Duration, kBucketCount> buckets{};
  /// Critical-path attribution: the longest causal chain through the span
  /// tree, found by the backward walk in analyze(). Its segments partition
  /// the request window, so these also sum to total() exactly — but unlike
  /// `buckets` (a coverage sweep), concurrent spans off the path contribute
  /// nothing here.
  std::array<sim::Duration, kBucketCount> path_buckets{};

  [[nodiscard]] sim::Duration total() const { return end - start; }
  /// Time attributed to a named (non-kOther) bucket.
  [[nodiscard]] sim::Duration named() const {
    return total() - buckets[static_cast<std::size_t>(Bucket::kOther)];
  }
  /// Critical-path time on a named bucket.
  [[nodiscard]] sim::Duration path_named() const {
    return total() - path_buckets[static_cast<std::size_t>(Bucket::kOther)];
  }
  /// The op's verdict: which bucket owns the largest share of its critical
  /// path ("this op was slow because of X").
  [[nodiscard]] Bucket dominant_path_bucket() const {
    std::size_t best = static_cast<std::size_t>(Bucket::kOther);
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (path_buckets[i] > path_buckets[best]) best = i;
    }
    return static_cast<Bucket>(best);
  }
};

struct Analysis {
  std::vector<OpBreakdown> ops;
  std::uint64_t orphan_spans = 0;    ///< parent id absent from the trace
  std::uint64_t incomplete_ops = 0;  ///< request span never closed
  std::uint64_t open_spans = 0;      ///< non-request spans never closed
  std::array<sim::Duration, kBucketCount> totals{};
  /// Summed critical-path segments across all ops (partition the same
  /// total_latency — path segments of each op sum to its total()).
  std::array<sim::Duration, kBucketCount> path_totals{};
  sim::Duration total_latency = 0;

  /// Fraction of total latency landing in a named bucket (1.0 when no
  /// latency was measured — an empty analysis attributes nothing wrongly).
  [[nodiscard]] double named_fraction() const {
    if (total_latency == 0) return 1.0;
    const auto other = totals[static_cast<std::size_t>(Bucket::kOther)];
    return static_cast<double>(total_latency - other) /
           static_cast<double>(total_latency);
  }
  /// Fraction of total latency the critical-path walk lands in a named
  /// bucket (the dsm_inspect ">= 95% of p99 attributed" gate reads this).
  [[nodiscard]] double path_named_fraction() const {
    if (total_latency == 0) return 1.0;
    const auto other = path_totals[static_cast<std::size_t>(Bucket::kOther)];
    return static_cast<double>(total_latency - other) /
           static_cast<double>(total_latency);
  }
};

class Tracer {
 public:
  /// `capacity` caps retained completed spans; beyond it new spans are
  /// counted in dropped_spans() and discarded (analysis then reports the
  /// affected traces as incomplete rather than silently lying).
  explicit Tracer(std::size_t capacity = 1 << 20);

  // --- op lifecycle (called by the load generator) ----------------------
  /// Opens a trace for the op that arrived at `arrival` and begins service
  /// now. Records the request umbrella span (left open) and a backlog span
  /// covering arrival -> now. Sets the node's context slot.
  SpanContext begin_op(std::uint32_t node, std::string_view op,
                       std::uint32_t shard, sim::Time arrival, sim::Time now);

  /// Closes the node's current op (ends its request span) and clears the
  /// node's context slot.
  void end_op(std::uint32_t node, sim::Time now);

  // --- context slots ----------------------------------------------------
  /// The context new spans on `node` should attach under. Invalid when no
  /// traced op is in flight on the node.
  [[nodiscard]] SpanContext node_ctx(std::uint32_t node) const;

  /// Repoints the node slot's parent (the trace id is unchanged). Lock
  /// clients bracket their request send with this so wire/root spans nest
  /// under the lock-wait span; restore the previous parent afterwards.
  void set_node_parent(std::uint32_t node, SpanId parent);

  // --- span recording ---------------------------------------------------
  /// Opens a span; returns its id (0 when `trace` is 0).
  SpanId start_span(TraceId trace, SpanId parent, SpanKind kind,
                    std::uint32_t node, sim::Time start);
  /// Closes an open span. Unknown/0 ids are ignored.
  void end_span(SpanId id, sim::Time end);
  /// Records an already-finished span in one call.
  void record_span(TraceId trace, SpanId parent, SpanKind kind,
                   std::uint32_t node, sim::Time start, sim::Time end);

  // --- introspection ----------------------------------------------------
  [[nodiscard]] std::uint64_t traces_started() const { return next_trace_ - 1; }
  [[nodiscard]] std::size_t completed_spans() const { return spans_.size(); }
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_; }
  void for_each_span(const std::function<void(const Span&)>& fn) const;
  /// Metadata of a trace's op ("read"/"write"/"txn", or "" if unknown).
  [[nodiscard]] std::string_view op_of(TraceId trace) const;

  /// Groups spans per trace, checks tree completeness, sweeps buckets.
  [[nodiscard]] Analysis analyze() const;

 private:
  struct OpRecord {
    TraceId trace = 0;
    SpanId root_span = 0;
    std::uint32_t node = 0;
    std::uint32_t shard = 0;
    std::string_view op;
    bool done = false;
  };

  void store(const Span& s);

  std::size_t capacity_;
  TraceId next_trace_ = 1;
  SpanId next_span_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;                    ///< completed
  std::unordered_map<SpanId, Span> open_;      ///< started, not yet ended
  std::vector<SpanContext> node_ctx_;          ///< per-node slots
  std::vector<OpRecord> ops_;
  std::unordered_map<TraceId, std::size_t> op_index_;
};

}  // namespace optsync::telemetry
