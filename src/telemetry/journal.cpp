#include "telemetry/journal.hpp"

#include "stats/json.hpp"

namespace optsync::telemetry {

const char* abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kReadSetClobber:
      return "read_set_clobber";
    case AbortReason::kCommitValidation:
      return "commit_validation";
    case AbortReason::kDirectoryEpoch:
      return "directory_epoch";
    case AbortReason::kFallbackEscalation:
      return "fallback_escalation";
  }
  return "unknown";
}

const char* Journal::kind_name(Kind k) {
  switch (k) {
    case Kind::kTxnAbort:
      return "txn_abort";
    case Kind::kLeaseGrant:
      return "lease_grant";
    case Kind::kLeaseInvalidation:
      return "lease_invalidation";
    case Kind::kLeaseExpiry:
      return "lease_expiry";
    case Kind::kElasticDecision:
      return "elastic_decision";
  }
  return "unknown";
}

std::uint64_t Journal::count(Kind k) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == k) ++n;
  }
  return n;
}

void Journal::write_json(std::ostream& out) const {
  stats::JsonWriter w(out, /*pretty=*/true);
  w.begin_object();
  w.value("schema", "optsync-journal/1");
  w.value("capacity", static_cast<std::uint64_t>(capacity_));
  w.value("dropped", dropped_);
  w.begin_array("events");
  for (const auto& e : events_) {
    w.begin_object();
    w.value("kind", kind_name(e.kind));
    w.value("t", e.t);
    switch (e.kind) {
      case Kind::kTxnAbort:
        w.value("reason", abort_reason_name(e.reason));
        w.value("node", e.node);
        w.value("shard", e.shard);
        w.value("stripe", e.stripe);
        w.value("owner", e.owner);
        w.value("attempt", e.attempt);
        break;
      case Kind::kLeaseGrant:
      case Kind::kLeaseInvalidation:
      case Kind::kLeaseExpiry:
        w.value("node", e.node);
        w.value("shard", e.shard);
        w.value("slot", e.stripe);
        w.value("epoch_old", e.epoch_old);
        w.value("epoch_new", e.epoch_new);
        break;
      case Kind::kElasticDecision:
        w.value("step", e.step != nullptr ? e.step : "unknown");
        w.value("shard", e.shard);
        w.value("target", e.target);
        w.value("slope_per_s", e.slope_per_s);
        w.value("peak_backlog", e.peak_backlog);
        w.value("backlog", e.backlog);
        w.value("top_key", e.top_key);
        w.value("top_share", e.top_share);
        w.value("streak", e.streak);
        w.value("cooldown", e.cooldown);
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace optsync::telemetry
