#include "telemetry/tracer.hpp"

#include <algorithm>

namespace optsync::telemetry {

Tracer::Tracer(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

SpanContext Tracer::begin_op(std::uint32_t node, std::string_view op,
                             std::uint32_t shard, sim::Time arrival,
                             sim::Time now) {
  const TraceId trace = next_trace_++;
  const SpanId root = next_span_++;
  Span s;
  s.trace = trace;
  s.id = root;
  s.parent = 0;
  s.kind = SpanKind::kRequest;
  s.node = node;
  s.start = arrival;
  open_.emplace(root, s);

  if (now > arrival) {
    record_span(trace, root, SpanKind::kBacklog, node, arrival, now);
  }

  if (node_ctx_.size() <= node) node_ctx_.resize(node + 1);
  node_ctx_[node] = SpanContext{trace, root};

  op_index_.emplace(trace, ops_.size());
  ops_.push_back(OpRecord{trace, root, node, shard, op, false});
  return node_ctx_[node];
}

void Tracer::end_op(std::uint32_t node, sim::Time now) {
  if (node >= node_ctx_.size() || !node_ctx_[node].valid()) return;
  const TraceId trace = node_ctx_[node].trace;
  const auto it = op_index_.find(trace);
  if (it != op_index_.end()) {
    OpRecord& rec = ops_[it->second];
    end_span(rec.root_span, now);
    rec.done = true;
  }
  node_ctx_[node] = SpanContext{};
}

SpanContext Tracer::node_ctx(std::uint32_t node) const {
  return node < node_ctx_.size() ? node_ctx_[node] : SpanContext{};
}

void Tracer::set_node_parent(std::uint32_t node, SpanId parent) {
  if (node >= node_ctx_.size()) node_ctx_.resize(node + 1);
  node_ctx_[node].span = parent;
}

SpanId Tracer::start_span(TraceId trace, SpanId parent, SpanKind kind,
                          std::uint32_t node, sim::Time start) {
  if (trace == 0) return 0;
  const SpanId id = next_span_++;
  Span s;
  s.trace = trace;
  s.id = id;
  s.parent = parent;
  s.kind = kind;
  s.node = node;
  s.start = start;
  open_.emplace(id, s);
  return id;
}

void Tracer::end_span(SpanId id, sim::Time end) {
  if (id == 0) return;
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  Span s = it->second;
  open_.erase(it);
  s.end = end;
  store(s);
}

void Tracer::record_span(TraceId trace, SpanId parent, SpanKind kind,
                         std::uint32_t node, sim::Time start, sim::Time end) {
  if (trace == 0) return;
  Span s;
  s.trace = trace;
  s.id = next_span_++;
  s.parent = parent;
  s.kind = kind;
  s.node = node;
  s.start = start;
  s.end = end;
  store(s);
}

void Tracer::store(const Span& s) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(s);
}

void Tracer::for_each_span(const std::function<void(const Span&)>& fn) const {
  for (const Span& s : spans_) fn(s);
}

std::string_view Tracer::op_of(TraceId trace) const {
  const auto it = op_index_.find(trace);
  return it == op_index_.end() ? std::string_view{} : ops_[it->second].op;
}

Analysis Tracer::analyze() const {
  Analysis out;
  out.open_spans = open_.size();

  // Group completed spans by trace.
  std::unordered_map<TraceId, std::vector<const Span*>> by_trace;
  by_trace.reserve(ops_.size());
  for (const Span& s : spans_) by_trace[s.trace].push_back(&s);

  for (const OpRecord& rec : ops_) {
    if (!rec.done) {
      ++out.incomplete_ops;
      continue;
    }
    const auto it = by_trace.find(rec.trace);
    if (it == by_trace.end()) {
      ++out.incomplete_ops;  // request span fell to the capacity cap
      continue;
    }
    const std::vector<const Span*>& spans = it->second;

    // Tree completeness: every non-zero parent must name a span of this
    // trace (open request spans never get here — rec.done gates it).
    const Span* request = nullptr;
    for (const Span* s : spans) {
      if (s->kind == SpanKind::kRequest) request = s;
    }
    if (request == nullptr) {
      ++out.incomplete_ops;
      continue;
    }
    for (const Span* s : spans) {
      if (s->parent == 0) continue;
      const bool found =
          std::any_of(spans.begin(), spans.end(),
                      [&](const Span* p) { return p->id == s->parent; });
      if (!found) ++out.orphan_spans;
    }

    // Interval sweep over the request window. Leaves are clipped to the
    // window; each elementary interval goes to the best-priority covering
    // leaf; what nothing covers is kOther. Sums are exact by construction.
    OpBreakdown b;
    b.trace = rec.trace;
    b.node = rec.node;
    b.shard = rec.shard;
    b.op = rec.op;
    b.start = request->start;
    b.end = request->end;

    struct Leaf {
      sim::Time start, end;
      SpanKind kind;
    };
    std::vector<Leaf> leaves;
    std::vector<sim::Time> edges;
    edges.push_back(b.start);
    edges.push_back(b.end);
    for (const Span* s : spans) {
      if (!attributable(s->kind)) continue;
      const sim::Time lo = std::max(s->start, b.start);
      const sim::Time hi = std::min(s->end, b.end);
      if (lo >= hi) continue;
      leaves.push_back(Leaf{lo, hi, s->kind});
      edges.push_back(lo);
      edges.push_back(hi);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
      const sim::Time lo = edges[i];
      const sim::Time hi = edges[i + 1];
      int best_prio = 100;
      SpanKind best = SpanKind::kRequest;
      for (const Leaf& l : leaves) {
        if (l.start <= lo && l.end >= hi && sweep_priority(l.kind) < best_prio) {
          best_prio = sweep_priority(l.kind);
          best = l.kind;
        }
      }
      const Bucket bucket =
          best_prio == 100 ? Bucket::kOther : bucket_of(best);
      b.buckets[static_cast<std::size_t>(bucket)] += hi - lo;
    }

    // Critical path: backward walk from the request's completion. At each
    // point in time the path sits on the child whose (clipped) end is the
    // latest — the span whose completion gated progress; the gap between
    // consecutive children is the parent's own self time. Segments
    // partition [start, end], so path_buckets sum to total() exactly.
    std::unordered_map<SpanId, std::vector<const Span*>> children;
    for (const Span* s : spans) {
      if (s->id != request->id) children[s->parent].push_back(s);
    }
    for (auto& [pid, kids] : children) {
      std::sort(kids.begin(), kids.end(), [](const Span* x, const Span* y) {
        return x->end != y->end ? x->end > y->end : x->start > y->start;
      });
    }
    struct PathWalker {
      const std::unordered_map<SpanId, std::vector<const Span*>>& children;
      OpBreakdown& b;
      void attribute(SpanKind k, sim::Time lo, sim::Time hi) const {
        if (hi <= lo) return;
        const Bucket bucket = attributable(k) ? bucket_of(k) : Bucket::kOther;
        b.path_buckets[static_cast<std::size_t>(bucket)] += hi - lo;
      }
      void walk(const Span* s, sim::Time lo, sim::Time hi) const {
        sim::Time t = hi;
        const auto kids = children.find(s->id);
        if (kids != children.end()) {
          for (const Span* c : kids->second) {  // end-descending order
            if (t <= lo) break;
            const sim::Time ce = std::min(c->end, t);
            const sim::Time cs = std::max(c->start, lo);
            if (ce <= cs) continue;
            attribute(s->kind, ce, t);  // self time after this child
            walk(c, cs, ce);
            t = cs;
          }
        }
        attribute(s->kind, lo, t);  // leading self time (whole span if leaf)
      }
    };
    PathWalker{children, b}.walk(request, b.start, b.end);

    for (std::size_t i = 0; i < kBucketCount; ++i) {
      out.totals[i] += b.buckets[i];
      out.path_totals[i] += b.path_buckets[i];
    }
    out.total_latency += b.total();
    out.ops.push_back(std::move(b));
  }
  return out;
}

}  // namespace optsync::telemetry
