// Wall-clock telemetry sampler for the threaded-rt substrate (rt/).
//
// Same probe/SeriesSet model as the sim-clock Sampler, driven by a real
// sampling thread instead of scheduler events: rt/ runs on genuine OS
// threads with no discrete-event clock to hang ticks off. Timestamps are
// nanoseconds since start() on the steady clock, so the exported series
// line up with the sim sampler's schema ("optsync-timeseries/1").
//
// Thread-safety contract: probes are registered before start(); the
// sampling thread is the only writer of the SeriesSet between start() and
// stop(); readers call series()/write after stop() returns (stop joins).
// Probe callbacks run on the sampling thread and must themselves be safe
// against the threads they observe (atomic counters are the expected
// shape, matching rt/'s stats).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/series.hpp"

namespace optsync::telemetry {

class RtSampler {
 public:
  explicit RtSampler(std::chrono::microseconds interval =
                         std::chrono::microseconds(1000),
                     std::size_t capacity = 8192);
  ~RtSampler();

  RtSampler(const RtSampler&) = delete;
  RtSampler& operator=(const RtSampler&) = delete;

  /// Register before start(). Callback runs on the sampling thread.
  void add_gauge(std::string name, Labels labels, std::function<double()> fn);

  /// Rate probe over a monotone counter, mirroring Sampler::add_rate: the
  /// sample is the counter's per-second increase since the previous tick
  /// (wall-clock ns). The first tick primes the counter and records 0.
  void add_rate(std::string name, Labels labels,
                std::function<double()> counter);

  /// Attaches a Prometheus HELP string to a metric family (see
  /// SeriesSet::set_help). Register before start().
  void set_help(const std::string& name, std::string help) {
    set_.set_help(name, std::move(help));
  }

  void start();
  /// Idempotent; joins the sampling thread. One final sample is taken on
  /// the way out so short runs never export empty series.
  void stop();

  /// Valid after stop() (or before start()).
  [[nodiscard]] const SeriesSet& series() const { return set_; }
  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void sample_once(std::chrono::steady_clock::time_point t0);

  std::chrono::microseconds interval_;
  SeriesSet set_;
  struct Probe {
    std::size_t idx;
    std::function<double()> fn;
    bool rate = false;
    bool primed = false;
    double prev = 0.0;
    sim::Time prev_t = 0;
  };
  std::vector<Probe> probes_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace optsync::telemetry
