// Overload detection over per-shard backlog series: "slow" vs "drowning".
//
// An at-capacity shard shows high latency but a backlog that oscillates
// around a plateau — it drains what arrives. A shard past saturation
// cannot drain: its backlog (issued - completed) grows for as long as
// arrivals continue. The detector fits a least-squares slope over the
// trailing window of the backlog series UP TO ITS PEAK (a finite run ends
// with a drain phase once arrivals stop; with unending arrivals the peak
// is the end and the windows coincide) and flags the shard `drowning` when
// the slope is sustained-positive AND the peak backlog is material (a
// growing-but-tiny queue is noise, not overload).
//
// flag_overload() runs the verdict for every shard of a ServiceReport
// against the "optsync_shard_backlog" series the standard service gauges
// produce (shard/sharded_store.hpp register_telemetry), filling the
// drowning/backlog fields of each ShardServiceStats.
#pragma once

#include "stats/service_report.hpp"
#include "telemetry/series.hpp"

namespace optsync::telemetry {

struct OverloadConfig {
  /// Trailing fraction of the pre-peak samples the slope is fitted over.
  /// The front of the run (ramp-up) is noise for the "sustained" question.
  double window_fraction = 0.5;
  /// Fewer pre-peak samples than this -> no verdict (never drowning).
  std::size_t min_samples = 6;
  /// Backlog growth (requests/second of series time) below this is "keeps
  /// up, roughly"; above it the queue is structurally growing.
  double min_slope_per_s = 1'000.0;
  /// A shard whose peak backlog is below this cannot be drowning no
  /// matter the slope — it never had anything material queued.
  double min_final_backlog = 16.0;
};

struct OverloadVerdict {
  bool drowning = false;
  double slope_per_s = 0.0;   ///< least-squares backlog slope, trailing window
  double final_backlog = 0.0;
  double peak_backlog = 0.0;
};

/// Assesses one backlog series. Robust to empty/short series (no verdict).
[[nodiscard]] OverloadVerdict assess_backlog(const Series& s,
                                             const OverloadConfig& cfg = {});

/// The LIVE variant the elastic controller acts on mid-run: the historical
/// verdict (assess_backlog is peak-pinned, so a shard that drowned once
/// stays flagged) overlaid with the current backlog — a shard whose queue
/// has drained below the materiality floor has recovered, whatever its
/// history says. This is what makes migrate-then-drain flip the verdict
/// exactly once instead of flapping: the slope stays above threshold (the
/// pre-peak window never changes) while the recovery is judged on live
/// backlog alone.
[[nodiscard]] bool live_drowning(const Series& s, double current_backlog,
                                 const OverloadConfig& cfg = {});

/// Same overlay for callers that already hold the series' verdict (the
/// elastic controller caches it per tick for its decision journal).
[[nodiscard]] bool live_drowning(const OverloadVerdict& v,
                                 double current_backlog,
                                 const OverloadConfig& cfg = {});

/// Runs assess_backlog for every shard's "optsync_shard_backlog" series in
/// `set` and writes the verdicts into `report.shards`. Shards without a
/// series are left untouched.
void flag_overload(stats::ServiceReport& report, const SeriesSet& set,
                   const OverloadConfig& cfg = {});

}  // namespace optsync::telemetry
