// Ring-buffered time series with Prometheus text exposition and JSON
// export (schema "optsync-timeseries/1").
//
// A Series is one metric stream: a name, a fixed label set, and a bounded
// deque of (timestamp, value) samples — the oldest samples fall off when
// the ring fills, with a drop counter so exports can say so. A SeriesSet
// owns many series and renders them two ways:
//
//   * write_prometheus(): the text exposition format (a "# HELP" and
//     "# TYPE" line per metric name, then `name{labels} value` with the
//     LAST sample) — what a scrape endpoint would serve. Metric and label
//     names are sanitized to the exposition grammar on output
//     ([a-zA-Z_:][a-zA-Z0-9_:]* for metrics, [a-zA-Z_][a-zA-Z0-9_]* for
//     labels), so a series registered with a free-form name still renders
//     promtool-parseable;
//   * write_json(): the full retained history of every series, for
//     offline plotting ({"schema":"optsync-timeseries/1", ...}).
//
// The set is substrate-agnostic: the sim-clock Sampler and the wall-clock
// RtSampler both feed it.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simkern/time.hpp"

namespace optsync::telemetry {

/// Label set of one series ({{"shard","3"}} and the like). Order matters
/// for identity; keep call sites consistent.
using Labels = std::vector<std::pair<std::string, std::string>>;

struct Sample {
  sim::Time t = 0;  ///< nanoseconds (sim clock, or ns since rt start)
  double v = 0.0;
};

struct Series {
  std::string name;
  Labels labels;
  std::deque<Sample> samples;
  std::uint64_t dropped = 0;  ///< samples evicted by the ring bound

  [[nodiscard]] double last() const {
    return samples.empty() ? 0.0 : samples.back().v;
  }
};

class SeriesSet {
 public:
  /// `capacity` bounds retained samples PER series.
  explicit SeriesSet(std::size_t capacity = 8192);

  /// Finds or creates the series with this identity; returns its index
  /// (stable for the set's lifetime).
  std::size_t series(std::string name, Labels labels);

  void append(std::size_t idx, sim::Time t, double v);

  [[nodiscard]] std::size_t size() const { return all_.size(); }
  [[nodiscard]] const Series& at(std::size_t idx) const { return all_[idx]; }
  /// First series matching (name, labels), or nullptr.
  [[nodiscard]] const Series* find(std::string_view name,
                                   const Labels& labels) const;

  /// Attaches a HELP string to a metric name (rendered as the family's
  /// "# HELP" line; metrics without one get a generic default so every
  /// family still carries the full preamble).
  void set_help(const std::string& name, std::string help);
  /// The registered HELP string, or nullptr.
  [[nodiscard]] const std::string* help_of(const std::string& name) const;

  /// Maps a free-form name onto the exposition grammar: every character
  /// outside [a-zA-Z0-9_:] (metrics) / [a-zA-Z0-9_] (labels) becomes '_',
  /// and a leading digit gains a '_' prefix.
  [[nodiscard]] static std::string sanitize_metric_name(std::string_view raw);
  [[nodiscard]] static std::string sanitize_label_name(std::string_view raw);

  /// Prometheus text exposition of every series' latest value.
  void write_prometheus(std::ostream& out) const;

  /// Full JSON history: {"schema":"optsync-timeseries/1",
  /// "interval_ns":N, "series":[{name, labels, dropped,
  /// "samples":[[t_ns, v], ...]}, ...]}.
  void write_json(std::ostream& out, sim::Duration interval_ns) const;

 private:
  std::size_t capacity_;
  std::vector<Series> all_;
  /// HELP strings keyed by RAW metric name (sanitized on output).
  std::vector<std::pair<std::string, std::string>> help_;
};

}  // namespace optsync::telemetry
