// Sim-clock telemetry sampler: periodic gauge snapshots into a SeriesSet.
//
// start() arms a periodic tick on the scheduler. Each tick evaluates every
// registered probe and appends one sample per probe at the current sim
// time. The tick re-arms itself only while other simulation events are
// pending: a discrete-event run ends when the queue drains, so a sampler
// that rescheduled unconditionally would keep the simulation alive
// forever. The final partial interval is captured by calling sample_now()
// once after the scheduler returns.
//
// Two probe flavors:
//   * add_gauge  — the callback IS the sample (backlog depth, queue length)
//   * add_rate   — the callback is a monotone counter; the sample is its
//     per-second increase since the previous tick (retransmits/s,
//     goodput). The first tick primes the counter and records 0; a
//     zero-length interval records 0 (never a division by zero).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkern/scheduler.hpp"
#include "telemetry/series.hpp"

namespace optsync::telemetry {

struct SamplerConfig {
  sim::Duration interval_ns = 50'000;  ///< 50 sim-µs between snapshots
  std::size_t capacity = 8192;         ///< retained samples per series
};

class Sampler {
 public:
  explicit Sampler(SamplerConfig cfg = {});

  /// Registers a gauge probe. Register before or after start(); new probes
  /// simply join the next tick.
  void add_gauge(std::string name, Labels labels, std::function<double()> fn);

  /// Registers a rate probe over a monotone counter (per-second units).
  void add_rate(std::string name, Labels labels,
                std::function<double()> counter);

  /// Attaches a Prometheus HELP string to a metric family (see
  /// SeriesSet::set_help).
  void set_help(const std::string& name, std::string help) {
    set_.set_help(name, std::move(help));
  }

  /// Arms the periodic tick (first snapshot one interval from now).
  void start(sim::Scheduler& sched);
  /// Cancels any pending tick.
  void stop();

  /// Takes one snapshot immediately (used for the final partial interval,
  /// and by tests).
  void sample_now(sim::Time now);

  [[nodiscard]] const SeriesSet& series() const { return set_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] sim::Duration interval_ns() const { return cfg_.interval_ns; }

 private:
  void tick();

  struct Probe {
    std::size_t idx = 0;  ///< series index in set_
    std::function<double()> fn;
    bool rate = false;
    bool primed = false;
    double prev = 0.0;
    sim::Time prev_t = 0;
  };

  SamplerConfig cfg_;
  SeriesSet set_;
  std::vector<Probe> probes_;
  sim::Scheduler* sched_ = nullptr;
  sim::EventId pending_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace optsync::telemetry
