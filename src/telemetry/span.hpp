// Causal span model for per-request tracing across the DSM substrate.
//
// A service request gets one TraceId at arrival; every latency-bearing leg
// of its journey (client backlog, lock wait, wire hops, root queueing,
// coalesce delay, multicast dispatch, retransmission, speculation,
// rollback, the critical section itself) becomes a Span inside that trace.
// A SpanContext {trace, parent span} travels with the op: node-side it
// lives in a per-node slot of the Tracer (a node runs one op at a time —
// the Fig. 4 nesting rule), wire-side it is captured into the message
// closure, root-side it rides in SequencedWrite and the lock waiter queue.
//
// The critical-path analyzer (telemetry/tracer.hpp) folds every span of a
// trace into latency buckets; bucket_of() below is that mapping. kRequest
// and kLockWait are umbrella spans — they contain other spans and are
// never attributed themselves.
#pragma once

#include <cstdint>
#include <string_view>

namespace optsync::telemetry {

/// Identifies one traced service operation. 0 = "no trace".
using TraceId = std::uint64_t;

/// Identifies one span. Unique across traces. 0 = "no span".
using SpanId = std::uint64_t;

/// What travels with an op: which trace it belongs to and which span new
/// child spans should hang off. Invalid (trace == 0) means "untraced" —
/// every instrumentation site is a no-op then.
struct SpanContext {
  TraceId trace = 0;
  SpanId span = 0;
  [[nodiscard]] bool valid() const { return trace != 0; }
};

/// The legs of a request's journey. Keep span_kind_name() in sync.
enum class SpanKind : std::uint8_t {
  kRequest = 0,   ///< umbrella: arrival -> completion (one per trace)
  kBacklog,       ///< arrival -> worker picks the request up (client FIFO)
  kLockWait,      ///< umbrella: lock requested -> grant applied locally
  kWireUp,        ///< fault-free flight of a lock request/release to root
  kRootQueue,     ///< waiting in the root's lock queue (busy lock)
  kCoalesce,      ///< sequenced write waiting in the root's open frame
  kRootDispatch,  ///< frame flush -> serial-server dispatch (root compute)
  kWireDown,      ///< fault-free flight of the grant frame to the waiter
  kRetransmit,    ///< delivery delay beyond the fault-free flight time
  kCs,            ///< critical section under the lock (or read compute)
  kSpeculate,     ///< optimistic journal save + speculative body (§4)
  kRollback,      ///< journal restore after a failed speculation
  kValidate,      ///< OCC read-set validation against orec versions
  kBackoff,       ///< contention-manager delay between transaction retries
  kLeaseFetch,    ///< client read round trip to the shard root (lease miss)
};
inline constexpr std::size_t kSpanKindCount = 15;

constexpr std::string_view span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kBacklog:
      return "backlog";
    case SpanKind::kLockWait:
      return "lock-wait";
    case SpanKind::kWireUp:
      return "wire-up";
    case SpanKind::kRootQueue:
      return "root-queue";
    case SpanKind::kCoalesce:
      return "coalesce";
    case SpanKind::kRootDispatch:
      return "root-dispatch";
    case SpanKind::kWireDown:
      return "wire-down";
    case SpanKind::kRetransmit:
      return "retransmit";
    case SpanKind::kCs:
      return "cs";
    case SpanKind::kSpeculate:
      return "speculate";
    case SpanKind::kRollback:
      return "rollback";
    case SpanKind::kValidate:
      return "validate";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kLeaseFetch:
      return "lease-fetch";
  }
  return "?";
}

/// Latency-attribution buckets. kOther is the remainder of the request
/// window no leaf span covers (instant handoffs, context switches); the
/// buckets plus kOther sum to the measured arrival->completion latency
/// exactly, by construction.
enum class Bucket : std::uint8_t {
  kQueueWait = 0,   ///< root lock-queue time
  kWire,            ///< fault-free wire flight (up + down)
  kRootSequencing,  ///< root serial-server dispatch
  kCoalesce,        ///< grant parked in an open frame
  kRetransmit,      ///< loss-recovery delay beyond fault-free flight
  kRollback,        ///< speculative state restore
  kCompute,         ///< CS body, read compute, speculative save+body
  kBacklog,         ///< client-side FIFO queueing before service began
  kBackoff,         ///< contention-manager retry delay between txn attempts
  kOther,           ///< uncovered remainder (must stay small)
};
inline constexpr std::size_t kBucketCount = 10;

constexpr std::string_view bucket_name(Bucket b) {
  switch (b) {
    case Bucket::kQueueWait:
      return "queue_wait";
    case Bucket::kWire:
      return "wire";
    case Bucket::kRootSequencing:
      return "root_sequencing";
    case Bucket::kCoalesce:
      return "coalesce";
    case Bucket::kRetransmit:
      return "retransmit";
    case Bucket::kRollback:
      return "rollback";
    case Bucket::kCompute:
      return "compute";
    case Bucket::kBacklog:
      return "backlog";
    case Bucket::kBackoff:
      return "backoff";
    case Bucket::kOther:
      return "other";
  }
  return "?";
}

/// True for leaf kinds the analyzer attributes; false for umbrella spans
/// (kRequest, kLockWait), which only provide structure.
constexpr bool attributable(SpanKind k) {
  return k != SpanKind::kRequest && k != SpanKind::kLockWait;
}

constexpr Bucket bucket_of(SpanKind k) {
  switch (k) {
    case SpanKind::kBacklog:
      return Bucket::kBacklog;
    case SpanKind::kWireUp:
    case SpanKind::kWireDown:
    case SpanKind::kLeaseFetch:
      return Bucket::kWire;
    case SpanKind::kRootQueue:
      return Bucket::kQueueWait;
    case SpanKind::kCoalesce:
      return Bucket::kCoalesce;
    case SpanKind::kRootDispatch:
      return Bucket::kRootSequencing;
    case SpanKind::kRetransmit:
      return Bucket::kRetransmit;
    case SpanKind::kRollback:
      return Bucket::kRollback;
    case SpanKind::kCs:
    case SpanKind::kSpeculate:
    case SpanKind::kValidate:
      return Bucket::kCompute;
    case SpanKind::kBackoff:
      return Bucket::kBackoff;
    case SpanKind::kRequest:
    case SpanKind::kLockWait:
      break;
  }
  return Bucket::kOther;
}

/// Sweep priority when leaf spans overlap (lower wins). Compute wins over
/// wait-side spans: time the CPU spent speculating during a lock wait is
/// the paper's latency-hiding story, so it reads as compute, and only the
/// *uncovered* wait tail lands in the wait buckets.
constexpr int sweep_priority(SpanKind k) {
  switch (k) {
    case SpanKind::kCs:
    case SpanKind::kSpeculate:
    case SpanKind::kValidate:
      return 0;
    case SpanKind::kRollback:
      return 1;
    case SpanKind::kRetransmit:
      return 2;
    case SpanKind::kCoalesce:
      return 3;
    case SpanKind::kRootDispatch:
      return 4;
    case SpanKind::kWireDown:
      return 5;
    case SpanKind::kWireUp:
      return 6;
    case SpanKind::kRootQueue:
      return 7;
    case SpanKind::kBackoff:
      return 8;
    case SpanKind::kBacklog:
      return 9;
    case SpanKind::kLeaseFetch:
      return 10;
    case SpanKind::kRequest:
    case SpanKind::kLockWait:
      break;
  }
  return 99;
}

}  // namespace optsync::telemetry
