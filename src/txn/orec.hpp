// Ownership-record (orec) table for optimistic multi-key transactions.
//
// Classic STM orec design (orec-eager / OCC commit protocols) mapped onto
// the paper's DSM substrate: every registered site (one sharing group with
// its own root and lock — a shard of the service layer) carries a fixed
// number of version stripes. Each stripe is an ordinary eagerly shared
// mutex-data variable guarded by the site's lock, so
//
//   * READING an orec is a local memory read on any member — optimistic
//     read versioning costs zero network traffic;
//   * BUMPING an orec is a sequenced group write issued while holding the
//     site lock, so the bump rides the same GWC coalesced frames as the
//     data it versions. Grant-follows-data then gives validation its
//     teeth: once a committer's lock grant has applied locally, every
//     orec bump sequenced before that grant has applied too, so the local
//     replica of the orec table IS the owning root's view of it.
//
// An orec's word value is a pure version counter (no lock bit — write
// locking is encounter-time at the transaction layer via clobber
// interrupts, and commit-time exclusion comes from the site lock). Every
// committed write to a stripe, transactional or single-key, must bump the
// stripe exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/system.hpp"

namespace optsync::txn {

using SiteId = std::uint32_t;

class OrecTable {
 public:
  /// `stripes` orecs are defined per added site.
  OrecTable(dsm::DsmSystem& sys, std::uint32_t stripes);

  OrecTable(const OrecTable&) = delete;
  OrecTable& operator=(const OrecTable&) = delete;

  /// Defines the site's orec stripe variables ("<name>.orec<k>") in group
  /// `g`, guarded by `lock`. Returns the new site's id (dense, 0-based).
  SiteId add_site(const std::string& name, dsm::GroupId g, dsm::VarId lock);

  [[nodiscard]] std::uint32_t stripes() const { return stripes_; }
  [[nodiscard]] std::uint32_t sites() const {
    return static_cast<std::uint32_t>(vars_.size());
  }

  /// Default stripe hash for callers without their own placement scheme.
  /// Callers that slot keys themselves (the sharded store) should pass
  /// their slot index instead, so that a write to a slot always bumps the
  /// stripe a reader of any colliding key validated against.
  [[nodiscard]] std::uint32_t stripe_of(std::uint64_t key) const;

  [[nodiscard]] dsm::VarId var(SiteId site, std::uint32_t stripe) const;
  [[nodiscard]] const std::vector<dsm::VarId>& site_vars(SiteId site) const;

  /// Local (zero-traffic) read of a stripe's version on node `n`.
  [[nodiscard]] dsm::Word version(dsm::NodeId n, SiteId site,
                                  std::uint32_t stripe) const;

  /// Sequenced +1 bump issued from node `n`. The caller must hold the
  /// site's lock or the root will filter the write as speculative.
  void bump(dsm::NodeId n, SiteId site, std::uint32_t stripe);

 private:
  dsm::DsmSystem* sys_;
  std::uint32_t stripes_;
  std::vector<std::vector<dsm::VarId>> vars_;  ///< [site][stripe]
};

}  // namespace optsync::txn
