// Contention manager for the OCC transaction layer.
//
// Aborted transactions must not retry immediately: under a conflict burst
// every loser would re-speculate into the same window and abort again
// (livelock). The manager spaces retries with bounded exponential backoff
// plus deterministic jitter (the simulation stays a pure function of the
// seed), and after a configured abort budget it tells the caller to stop
// speculating and take the irrevocable fallback path — the legacy
// MultiGroupMutex pessimistic lock acquisition — so every transaction is
// guaranteed to finish (no starvation, however hot the keys).
#pragma once

#include <cstdint>

#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "simkern/random.hpp"

namespace optsync::txn {

struct ContentionConfig {
  /// Aborts tolerated before should_fallback() escalates to the
  /// irrevocable (pessimistic) path.
  std::uint32_t max_aborts = 4;

  /// Backoff after the k-th abort: base << min(k-1, cap doublings), then
  /// scaled by jitter in [0.5, 1.0] so colliding retriers decorrelate.
  sim::Duration backoff_base_ns = 2'000;
  sim::Duration backoff_cap_ns = 64'000;

  std::uint64_t seed = 0xc0217e27ull;  ///< jitter stream seed
};

class ContentionManager {
 public:
  ContentionManager(dsm::DsmSystem& sys, ContentionConfig cfg);

  ContentionManager(const ContentionManager&) = delete;
  ContentionManager& operator=(const ContentionManager&) = delete;

  [[nodiscard]] const ContentionConfig& config() const { return cfg_; }

  /// True once `aborts` consecutive aborts exhausted the optimistic
  /// budget; the caller must take the irrevocable fallback.
  [[nodiscard]] bool should_fallback(std::uint32_t aborts) const {
    return aborts >= cfg_.max_aborts;
  }

  /// The (pre-jitter) delay after the `aborts`-th consecutive abort
  /// (aborts >= 1). Exposed for tests; backoff() applies jitter on top.
  [[nodiscard]] sim::Duration base_delay(std::uint32_t aborts) const;

  /// Sleeps node `n`'s transaction for the jittered backoff and records a
  /// kBackoff span. Use as: co_await cm.backoff(n, aborts).join();
  sim::Process backoff(dsm::NodeId n, std::uint32_t aborts);

  // --- counters (end-of-run reporting) ----------------------------------
  [[nodiscard]] std::uint64_t backoffs() const { return backoffs_; }
  [[nodiscard]] sim::Duration total_backoff_ns() const {
    return total_backoff_ns_;
  }
  [[nodiscard]] std::uint64_t fallbacks_signalled() const {
    return fallbacks_;
  }
  /// Caller reports each escalation so the counter matches reality.
  void note_fallback() { ++fallbacks_; }

 private:
  dsm::DsmSystem* sys_;
  ContentionConfig cfg_;
  sim::Rng jitter_;  ///< draws interleave deterministically across nodes
  std::uint64_t backoffs_ = 0;
  sim::Duration total_backoff_ns_ = 0;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace optsync::txn
