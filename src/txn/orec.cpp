#include "txn/orec.hpp"

#include "simkern/assert.hpp"
#include "simkern/random.hpp"

namespace optsync::txn {

OrecTable::OrecTable(dsm::DsmSystem& sys, std::uint32_t stripes)
    : sys_(&sys), stripes_(stripes) {
  OPTSYNC_EXPECT(stripes >= 1);
}

SiteId OrecTable::add_site(const std::string& name, dsm::GroupId g,
                           dsm::VarId lock) {
  std::vector<dsm::VarId> vars;
  vars.reserve(stripes_);
  for (std::uint32_t k = 0; k < stripes_; ++k) {
    vars.push_back(sys_->define_mutex_data(name + ".orec" + std::to_string(k),
                                           g, lock, 0));
  }
  vars_.push_back(std::move(vars));
  return static_cast<SiteId>(vars_.size() - 1);
}

std::uint32_t OrecTable::stripe_of(std::uint64_t key) const {
  return static_cast<std::uint32_t>(sim::SplitMix64(key ^ 0x03ec0ull).next() %
                                    stripes_);
}

dsm::VarId OrecTable::var(SiteId site, std::uint32_t stripe) const {
  return vars_.at(site).at(stripe);
}

const std::vector<dsm::VarId>& OrecTable::site_vars(SiteId site) const {
  return vars_.at(site);
}

dsm::Word OrecTable::version(dsm::NodeId n, SiteId site,
                             std::uint32_t stripe) const {
  return sys_->node(n).read(var(site, stripe));
}

void OrecTable::bump(dsm::NodeId n, SiteId site, std::uint32_t stripe) {
  auto& node = sys_->node(n);
  const dsm::VarId v = var(site, stripe);
  node.write(v, node.read(v) + 1);
}

}  // namespace optsync::txn
