// Optimistic multi-key transactions over GWC (the paper's speculation
// machinery generalized from one critical section to serializable
// multi-site transactions — the orec-eager STM design mapped onto DSM).
//
// A transaction runs in three phases on its node:
//
//   SPECULATE — writes go to local memory only (DsmNode::poke, never
//     write: a speculative update must not reach the root, where fault
//     retiming could sequence it after the transaction aborted). The old
//     value of every written variable is journaled first (the undo log —
//     core::RollbackJournal's save/restore idiom with one extension: a
//     clobber-aware skip, below). Reads record the orec version of the
//     stripe they touched (optimistic read versioning, zero traffic).
//
//   DETECT — every written variable is armed with a change interrupt
//     (Fig. 5 machinery). A sequenced foreign write arriving to a
//     write-set variable means some other transaction committed a
//     conflicting update: the handler marks the variable CLOBBERED and
//     refreshes its restore image to the foreign value (the group's
//     authoritative state — an abort must converge on it, not on the
//     stale pre-image). Whether the clobber also DOOMS the transaction
//     depends on the conflict kind (encounter-time detection): a clobber
//     on a stripe the transaction READ kills it — its speculation is
//     built on superseded state — while a blind write survives, because
//     the commit republishes the whole write-set under the site locks
//     (strict two-phase locking at commit keeps write-write races
//     serializable: the loser's update is simply ordered first).
//
//   COMMIT — site locks of the write-set are acquired in canonical order
//     (ascending lock VarId — the same global order MultiGroupMutex
//     uses, so the optimistic and fallback paths are jointly
//     deadlock-free). Once every grant has applied locally, GWC's
//     grant-follows-data property makes the local orec replicas exactly
//     the owning roots' view, so read-set validation is a local compare
//     of each observed orec version ("validation at the root" by proxy).
//     On success the write-set is published through the normal sequenced
//     write path (the root's coalesced frames), the touched orec stripes
//     and each write-site's version ledger are bumped under the same
//     locks, and the locks release in reverse order. On failure the
//     locks release, the undo log restores each entry's current image
//     (the pre-image, or the clobbering commit's value), and the caller
//     consults the ContentionManager for backoff or irrevocable-fallback
//     escalation. A transaction already doomed when commit starts aborts
//     WITHOUT touching any lock — it lost the race, so it must not add
//     hold time to the locks the winner's readers are queued on.
//
// Read-set entries on sites whose lock the commit does not hold are
// validated against the local orec replica, which may trail that site's
// root by a propagation delay — the classic OCC validation window.
// Transactions whose read set is covered by their write locks (e.g. the
// store's read-modify-write) are strictly serializable; read-only
// snapshots are per-site consistent (see PROTOCOL.md, "OCC commit
// protocol").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dsm/system.hpp"
#include "simkern/coro.hpp"
#include "sync/gwc_lock.hpp"
#include "txn/contention.hpp"
#include "txn/orec.hpp"

namespace optsync::txn {

struct TxnConfig {
  /// Orec stripes per site. Callers that address storage in slots (the
  /// sharded store) must keep this equal to their slot count and pass the
  /// slot index as the stripe, so a write to a slot always bumps the
  /// stripe its readers validated.
  std::uint32_t orec_stripes = 8;

  /// Commit-time validation cost per read-set + write-stripe entry.
  sim::Duration validate_ns_per_entry = 30;

  /// Local-memory cost to journal / restore one undo entry (two 8-byte
  /// words through 400 MB/s memory — same model as OptimisticMutex).
  sim::Duration save_ns_per_var = 40;
  sim::Duration restore_ns_per_var = 40;

  ContentionConfig contention;
};

/// One in-flight transaction. Owned by the caller (it lives in the
/// calling coroutine's frame) and must not move between begin() and the
/// end of commit()/abort() — the manager keeps a per-node pointer to it
/// for the clobber interrupt handler.
struct Txn {
  dsm::NodeId node = 0;
  bool active = false;
  /// Set by the clobber interrupt: a conflicting transaction committed a
  /// write into a stripe this transaction READ; the commit must fail.
  bool doomed = false;
  sim::Time began = 0;

  /// Attribution for the doom (first doom wins; later clobbers on an
  /// already-doomed transaction change nothing about why it died).
  bool doom_known = false;
  SiteId doom_site = 0;
  std::uint32_t doom_stripe = 0;
  dsm::NodeId doom_origin = dsm::kNoNode;  ///< the conflicting committer

  struct ReadEntry {
    SiteId site;
    std::uint32_t stripe;
    dsm::Word observed;  ///< orec version at first read
  };
  std::vector<ReadEntry> reads;

  /// Undo log (RollbackJournal's Saved idiom + clobber tracking).
  struct UndoEntry {
    dsm::VarId var;
    dsm::Word before;  ///< restore image: pre-image, or the latest foreign
                       ///< sequenced value once clobbered
    dsm::Word after;   ///< speculative value, published on commit
    bool clobbered = false;
  };
  std::vector<UndoEntry> undo;

  std::vector<std::pair<SiteId, std::uint32_t>> write_stripes;  ///< dedup
  std::vector<SiteId> write_sites;                              ///< dedup
};

class TxnManager {
 public:
  TxnManager(dsm::DsmSystem& sys, TxnConfig cfg);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Registers a site: one sharing group whose lock serializes commits
  /// touching it. Defines the site's orec stripes in `g`. `version`, when
  /// not kNoVar, is the site's serializability ledger word — commit bumps
  /// it once per committing write-site, under the site lock.
  SiteId add_site(const std::string& name, dsm::GroupId g, dsm::VarId lock,
                  dsm::VarId version = dsm::kNoVar);

  [[nodiscard]] const TxnConfig& config() const { return cfg_; }
  [[nodiscard]] OrecTable& orecs() { return orecs_; }
  [[nodiscard]] ContentionManager& contention() { return cm_; }
  [[nodiscard]] std::uint32_t sites() const {
    return static_cast<std::uint32_t>(sites_.size());
  }
  [[nodiscard]] dsm::VarId site_lock(SiteId s) const {
    return sites_.at(s).lock;
  }

  // --- transaction lifecycle -------------------------------------------
  /// Starts `t` on node `n`. One transaction per node at a time (a node
  /// is one instruction stream — the Fig. 4 nesting rule).
  void begin(Txn& t, dsm::NodeId n);

  /// Adds (site, stripe) to the read set, recording the orec version the
  /// first time the stripe is seen. Idempotent per stripe.
  void observe(Txn& t, SiteId site, std::uint32_t stripe);

  /// observe() + local read of `v` (read-your-writes: speculative pokes
  /// are visible).
  [[nodiscard]] dsm::Word read_word(Txn& t, SiteId site, std::uint32_t stripe,
                                    dsm::VarId v);

  /// Speculative write: journals the pre-image (first write to `v`), arms
  /// the clobber interrupt, pokes the value into local memory. No network
  /// traffic until commit. No-op on a doomed transaction (it is about to
  /// abort; further speculation is wasted work).
  void write_word(Txn& t, SiteId site, std::uint32_t stripe, dsm::VarId v,
                  dsm::Word value);

  struct CommitResult {
    bool committed = false;
    bool doomed_at_commit = false;    ///< killed by a clobber interrupt
    bool validation_failed = false;   ///< read-set orec version moved
    sim::Time locks_acquired_at = 0;  ///< all write locks held (0 if none)
    /// Conflict attribution for the forensics journal: the (site, stripe)
    /// whose orec killed this attempt — the doom site for clobber aborts,
    /// the first failing read-set entry for validation aborts. The origin
    /// node is known for dooms (the clobbering writer); validation sees
    /// only the moved version, so origin stays kNoNode there.
    bool has_conflict = false;
    SiteId conflict_site = 0;
    std::uint32_t conflict_stripe = 0;
    dsm::NodeId conflict_origin = dsm::kNoNode;
  };

  /// Runs the commit protocol; on failure the transaction is fully
  /// aborted (undo restored, interrupts disarmed) before this completes.
  /// Use as: co_await mgr.commit(t, &res).join();
  sim::Process commit(Txn& t, CommitResult* out);

  /// Explicit abort: restore the undo log (clobbered entries restore the
  /// foreign committed value), disarm, finish. Charged the per-entry
  /// restore cost.
  sim::Process abort(Txn& t);

  // --- counters ----------------------------------------------------------
  [[nodiscard]] std::uint64_t begun() const { return begun_; }
  [[nodiscard]] std::uint64_t commits() const { return commits_; }
  [[nodiscard]] std::uint64_t aborts() const { return aborts_; }
  [[nodiscard]] std::uint64_t clobbers_observed() const { return clobbers_; }
  [[nodiscard]] std::uint64_t validation_failures() const {
    return validation_failures_;
  }

 private:
  struct Site {
    dsm::GroupId group = 0;
    dsm::VarId lock = dsm::kNoVar;
    dsm::VarId version = dsm::kNoVar;
    std::unique_ptr<sync::GwcQueueLock> client;
  };

  void arm_clobber(Txn& t, SiteId site, std::uint32_t stripe, dsm::VarId v);
  static void note_doom_conflict(const Txn& t, CommitResult* out);
  void finish(Txn& t);
  sim::Process abort_impl(Txn& t);

  dsm::DsmSystem* sys_;
  TxnConfig cfg_;
  OrecTable orecs_;
  ContentionManager cm_;
  std::vector<Site> sites_;
  std::unordered_map<dsm::NodeId, Txn*> active_;
  std::uint64_t begun_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t clobbers_ = 0;
  std::uint64_t validation_failures_ = 0;
};

}  // namespace optsync::txn
