#include "txn/contention.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::txn {

ContentionManager::ContentionManager(dsm::DsmSystem& sys, ContentionConfig cfg)
    : sys_(&sys), cfg_(cfg), jitter_(cfg.seed) {
  OPTSYNC_EXPECT(cfg.max_aborts >= 1);
  OPTSYNC_EXPECT(cfg.backoff_base_ns >= 1);
  OPTSYNC_EXPECT(cfg.backoff_cap_ns >= cfg.backoff_base_ns);
}

sim::Duration ContentionManager::base_delay(std::uint32_t aborts) const {
  OPTSYNC_EXPECT(aborts >= 1);
  sim::Duration d = cfg_.backoff_base_ns;
  for (std::uint32_t k = 1; k < aborts && d < cfg_.backoff_cap_ns; ++k) {
    d *= 2;
  }
  return std::min(d, cfg_.backoff_cap_ns);
}

sim::Process ContentionManager::backoff(dsm::NodeId n, std::uint32_t aborts) {
  const double scale = 0.5 + 0.5 * jitter_.uniform01();
  const auto delay = std::max<sim::Duration>(
      1, static_cast<sim::Duration>(
             static_cast<double>(base_delay(aborts)) * scale));
  ++backoffs_;
  total_backoff_ns_ += delay;
  auto& sched = sys_->scheduler();
  const sim::Time began = sched.now();
  co_await sim::delay(sched, delay);
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(n); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kBackoff, n,
                       began, sched.now());
    }
  }
}

}  // namespace optsync::txn
