#include "txn/txn.hpp"

#include <algorithm>

#include "simkern/assert.hpp"
#include "telemetry/tracer.hpp"

namespace optsync::txn {

TxnManager::TxnManager(dsm::DsmSystem& sys, TxnConfig cfg)
    : sys_(&sys),
      cfg_(cfg),
      orecs_(sys, cfg.orec_stripes),
      cm_(sys, cfg.contention) {}

SiteId TxnManager::add_site(const std::string& name, dsm::GroupId g,
                            dsm::VarId lock, dsm::VarId version) {
  OPTSYNC_EXPECT(sys_->var(lock).kind == dsm::VarKind::kLock);
  const SiteId id = orecs_.add_site(name, g, lock);
  Site site;
  site.group = g;
  site.lock = lock;
  site.version = version;
  site.client = std::make_unique<sync::GwcQueueLock>(*sys_, lock);
  sites_.push_back(std::move(site));
  OPTSYNC_ENSURE(static_cast<SiteId>(sites_.size() - 1) == id);
  return id;
}

void TxnManager::begin(Txn& t, dsm::NodeId n) {
  // One transaction per node: the node is one instruction stream, and the
  // clobber handler resolves its target through the per-node slot.
  OPTSYNC_EXPECT(active_.find(n) == active_.end());
  t = Txn{};
  t.node = n;
  t.active = true;
  t.began = sys_->scheduler().now();
  active_[n] = &t;
  ++begun_;
}

void TxnManager::observe(Txn& t, SiteId site, std::uint32_t stripe) {
  OPTSYNC_EXPECT(t.active);
  for (const auto& r : t.reads) {
    if (r.site == site && r.stripe == stripe) return;
  }
  t.reads.push_back(Txn::ReadEntry{site, stripe,
                                   orecs_.version(t.node, site, stripe)});
}

dsm::Word TxnManager::read_word(Txn& t, SiteId site, std::uint32_t stripe,
                                dsm::VarId v) {
  observe(t, site, stripe);
  // Read-your-own-writes: a pending speculative value shadows the local
  // replica (which a tolerated write-write clobber may have overwritten).
  for (const auto& u : t.undo) {
    if (u.var == v) return u.after;
  }
  return sys_->node(t.node).read(v);
}

void TxnManager::arm_clobber(Txn& t, SiteId site, std::uint32_t stripe,
                             dsm::VarId v) {
  sys_->node(t.node).arm_interrupt(
      v, [this, n = t.node, site, stripe](dsm::VarId var, dsm::Word value,
                                          dsm::NodeId origin) {
        // A sequenced foreign write landed in our write-set: some other
        // transaction committed a conflicting update. The applied value is
        // the group's authoritative state — record it as the entry's new
        // restore image (an abort must converge on it, not on the stale
        // pre-image). Whether the clobber KILLS us depends on what we did
        // with the variable: a blind write survives (our publish will
        // overwrite it under the site locks — strict two-phase locking at
        // commit keeps write-write races serializable), but a clobber on a
        // stripe this transaction READ dooms it — the speculation is built
        // on a value that is no longer the group's state. (Self-echoes
        // never reach here: hardware blocking drops them before the
        // interrupt.)
        auto it = active_.find(n);
        if (it != active_.end() && origin != n) {
          Txn& txn = *it->second;
          for (auto& u : txn.undo) {
            if (u.var == var) {
              u.clobbered = true;
              u.before = value;
              break;
            }
          }
          for (const auto& r : txn.reads) {
            if (r.site == site && r.stripe == stripe) {
              txn.doomed = true;
              if (!txn.doom_known) {
                // First doom wins: this is the conflict that killed us.
                txn.doom_known = true;
                txn.doom_site = site;
                txn.doom_stripe = stripe;
                txn.doom_origin = origin;
              }
              break;
            }
          }
          ++clobbers_;
        }
        sys_->node(n).resume_insharing();
      });
}

void TxnManager::write_word(Txn& t, SiteId site, std::uint32_t stripe,
                            dsm::VarId v, dsm::Word value) {
  OPTSYNC_EXPECT(t.active);
  // A doomed transaction stops speculating: it is headed for abort, and
  // every further poke is work the rollback would just undo.
  if (t.doomed) return;
  auto& node = sys_->node(t.node);
  for (auto& u : t.undo) {
    if (u.var == v) {
      u.after = value;
      node.poke(v, value);
      return;
    }
  }
  t.undo.push_back(Txn::UndoEntry{v, node.read(v), value, false});
  arm_clobber(t, site, stripe, v);
  node.poke(v, value);
  if (std::find(t.write_stripes.begin(), t.write_stripes.end(),
                std::make_pair(site, stripe)) == t.write_stripes.end()) {
    t.write_stripes.emplace_back(site, stripe);
  }
  if (std::find(t.write_sites.begin(), t.write_sites.end(), site) ==
      t.write_sites.end()) {
    t.write_sites.push_back(site);
  }
}

void TxnManager::note_doom_conflict(const Txn& t, CommitResult* out) {
  if (!t.doom_known) return;
  out->has_conflict = true;
  out->conflict_site = t.doom_site;
  out->conflict_stripe = t.doom_stripe;
  out->conflict_origin = t.doom_origin;
}

void TxnManager::finish(Txn& t) {
  for (const auto& u : t.undo) {
    sys_->node(t.node).disarm_interrupt(u.var);
  }
  active_.erase(t.node);
  t.active = false;
}

sim::Process TxnManager::commit(Txn& t, CommitResult* out) {
  OPTSYNC_EXPECT(t.active);
  OPTSYNC_EXPECT(out != nullptr);
  *out = CommitResult{};
  auto& sched = sys_->scheduler();
  auto& node = sys_->node(t.node);
  auto* trc = sys_->tracer();

  // Fast abort: a clobber interrupt already doomed this transaction, so
  // validation cannot succeed. Abort before touching any lock — a doomed
  // transaction must not add hold time to the very locks it lost the
  // race on.
  if (t.doomed) {
    out->doomed_at_commit = true;
    note_doom_conflict(t, out);
    ++aborts_;
    co_await abort_impl(t).join();
    co_return;
  }

  // Canonical lock order: ascending lock VarId — the same global order
  // MultiGroupMutex acquires in, so the optimistic commit path and the
  // irrevocable fallback can never deadlock against each other.
  std::vector<SiteId> order = t.write_sites;
  std::sort(order.begin(), order.end(), [this](SiteId a, SiteId b) {
    return sites_[a].lock < sites_[b].lock;
  });
  for (const SiteId s : order) {
    co_await sites_[s].client->acquire(t.node).join();
  }
  out->locks_acquired_at = order.empty() ? 0 : sched.now();

  // Validate. Grant-follows-data: with every write lock held, all orec
  // bumps sequenced before our grants have applied locally, so the local
  // orec replica is the owning roots' view for the locked sites.
  const sim::Time validate_began = sched.now();
  const auto entries = t.reads.size() + t.write_stripes.size();
  if (entries > 0) {
    co_await sim::delay(sched, cfg_.validate_ns_per_entry *
                                   static_cast<sim::Duration>(entries));
  }
  bool ok = !t.doomed;
  if (!ok) {
    out->doomed_at_commit = true;
    note_doom_conflict(t, out);
  }
  if (ok) {
    for (const auto& r : t.reads) {
      if (orecs_.version(t.node, r.site, r.stripe) != r.observed) {
        ok = false;
        out->validation_failed = true;
        // The moved orec is the conflict; the committer that bumped it is
        // anonymous here (only the version is replicated).
        out->has_conflict = true;
        out->conflict_site = r.site;
        out->conflict_stripe = r.stripe;
        ++validation_failures_;
        break;
      }
    }
  }
  if (trc != nullptr) {
    if (const auto ctx = trc->node_ctx(t.node); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kValidate,
                       t.node, validate_began, sched.now());
    }
  }

  if (ok) {
    // Publish through the normal sequenced path: we hold every involved
    // site lock, so the roots accept the writes and GWC carries them (and
    // the orec/ledger bumps behind them) to every member in one order.
    for (const auto& u : t.undo) node.write(u.var, u.after);
    for (const auto& [site, stripe] : t.write_stripes) {
      orecs_.bump(t.node, site, stripe);
    }
    for (const SiteId s : t.write_sites) {
      const dsm::VarId ver = sites_[s].version;
      if (ver != dsm::kNoVar) node.write(ver, node.read(ver) + 1);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    sites_[*it].client->release(t.node);
  }

  if (ok) {
    t.undo.clear();  // discard — nothing to restore
    finish(t);
    ++commits_;
    out->committed = true;
  } else {
    ++aborts_;
    co_await abort_impl(t).join();
  }
}

sim::Process TxnManager::abort(Txn& t) {
  OPTSYNC_EXPECT(t.active);
  ++aborts_;
  return abort_impl(t);
}

sim::Process TxnManager::abort_impl(Txn& t) {
  auto& sched = sys_->scheduler();
  auto& node = sys_->node(t.node);
  const sim::Time began = sched.now();
  if (!t.undo.empty()) {
    co_await sim::delay(sched, cfg_.restore_ns_per_var *
                                   static_cast<sim::Duration>(t.undo.size()));
  }
  // Restore in reverse journal order. For clobbered entries `before` is
  // the latest foreign sequenced value (authoritative — the clobber
  // handler keeps it current), so restoring converges every entry whether
  // or not a conflicting commit overwrote it; the interrupts stay armed
  // through the delay above so a commit landing mid-abort still refreshes
  // its entry before we restore it.
  for (auto it = t.undo.rbegin(); it != t.undo.rend(); ++it) {
    node.poke(it->var, it->before);
  }
  if (auto* trc = sys_->tracer()) {
    if (const auto ctx = trc->node_ctx(t.node); ctx.valid()) {
      trc->record_span(ctx.trace, ctx.span, telemetry::SpanKind::kRollback,
                       t.node, began, sched.now());
    }
  }
  finish(t);
}

}  // namespace optsync::txn
